#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "runner/experiment_engine.hpp"
#include "runner/report.hpp"
#include "util/json.hpp"

namespace kspot::util {
namespace {

// ---------------------------------------------------------------- escaping

TEST(JsonEscapeTest, PlainStringsGetQuoted) {
  EXPECT_EQ(JsonEscape("abc"), "\"abc\"");
  EXPECT_EQ(JsonEscape(""), "\"\"");
}

TEST(JsonEscapeTest, SpecialCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonEscape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

TEST(JsonNumberTest, IntegralAndFractional) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
}

TEST(JsonNumberTest, RoundTripsDoubles) {
  for (double v : {0.1, 1.0 / 3.0, 123456.789, -2.5e-7, 9.007199254740992e15}) {
    EXPECT_EQ(std::strtod(JsonNumber(v).c_str(), nullptr), v) << JsonNumber(v);
  }
}

// ------------------------------------------------------------------ writer

TEST(JsonWriterTest, NestedDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("name");
  w.Value("bench");
  w.Key("count");
  w.Value(2);
  w.Key("items");
  w.BeginArray();
  w.Value(1.5);
  w.Value(true);
  w.Null();
  w.BeginObject();
  w.Key("x");
  w.Value(uint64_t{7});
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"name":"bench","count":2,"items":[1.5,true,null,{"x":7}]})");
}

// ------------------------------------------------------------------- parse

TEST(JsonParseTest, ParsesScalarsArraysObjects) {
  auto doc = JsonValue::Parse(R"({"a": [1, -2.5, "x", true, false, null], "b": {}})");
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const JsonValue& v = doc.value();
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items().size(), 6u);
  EXPECT_EQ(a->array_items()[0].number_value(), 1.0);
  EXPECT_EQ(a->array_items()[1].number_value(), -2.5);
  EXPECT_EQ(a->array_items()[2].string_value(), "x");
  EXPECT_TRUE(a->array_items()[3].bool_value());
  EXPECT_FALSE(a->array_items()[4].bool_value());
  EXPECT_TRUE(a->array_items()[5].is_null());
  ASSERT_NE(v.Find("b"), nullptr);
  EXPECT_TRUE(v.Find("b")->is_object());
}

TEST(JsonParseTest, RejectsGarbage) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} x").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
}

TEST(JsonParseTest, StringEscapes) {
  auto doc = JsonValue::Parse(R"("a\n\"\\A")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().string_value(), "a\n\"\\A");
}

TEST(JsonRoundTripTest, DumpThenParseIsIdentity) {
  JsonValue obj = JsonValue::Object();
  obj.Set("s", JsonValue::String("weird \"\\\n chars"));
  obj.Set("n", JsonValue::Number(3.14159));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Bool(true));
  arr.Append(JsonValue::Null());
  obj.Set("a", std::move(arr));

  auto reparsed = JsonValue::Parse(obj.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(reparsed.value().Dump(), obj.Dump());
}

// ------------------------------------------- experiment result schema

runner::ScenarioRun MakeRun() {
  runner::ScenarioRun run;
  run.name = "unit";
  run.id = "T1";
  run.title = "schema round-trip";
  run.quick = true;
  run.threads = 4;
  run.wall_ms = 12.5;
  runner::TrialResult t;
  t.spec.scenario = "unit";
  t.spec.algorithm = "MINT";
  t.spec.seed = 7;
  t.spec.index = 0;
  t.spec.params = {{"k", "4"}, {"loss", "5% iid"}};
  t.metrics = {{"msgs_per_epoch", 12.5}, {"recall", 1.0}};
  t.wall_ms = 3.25;
  run.trials.push_back(t);
  runner::TrialResult bad = t;
  bad.spec.index = 1;
  bad.ok = false;
  bad.error = "boom \"quoted\"";
  bad.metrics.clear();
  run.trials.push_back(bad);
  return run;
}

TEST(BenchJsonSchemaTest, RoundTripsThroughParser) {
  runner::ScenarioRun run = MakeRun();
  auto doc = JsonValue::Parse(runner::ToJsonString(run));
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const JsonValue& root = doc.value();

  ASSERT_NE(root.Find("schema_version"), nullptr);
  EXPECT_EQ(root.Find("schema_version")->number_value(), 1.0);
  EXPECT_EQ(root.Find("generator")->string_value(), "kspot_bench");
  EXPECT_EQ(root.Find("scenario")->string_value(), "unit");
  EXPECT_EQ(root.Find("id")->string_value(), "T1");
  EXPECT_EQ(root.Find("title")->string_value(), "schema round-trip");
  EXPECT_TRUE(root.Find("quick")->bool_value());
  EXPECT_EQ(root.Find("threads")->number_value(), 4.0);
  EXPECT_EQ(root.Find("trial_count")->number_value(), 2.0);

  const JsonValue* trials = root.Find("trials");
  ASSERT_NE(trials, nullptr);
  ASSERT_TRUE(trials->is_array());
  ASSERT_EQ(trials->array_items().size(), 2u);

  const JsonValue& first = trials->array_items()[0];
  EXPECT_EQ(first.Find("index")->number_value(), 0.0);
  EXPECT_EQ(first.Find("algorithm")->string_value(), "MINT");
  EXPECT_EQ(first.Find("seed")->number_value(), 7.0);
  const JsonValue* params = first.Find("params");
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->Find("k")->string_value(), "4");
  EXPECT_EQ(params->Find("loss")->string_value(), "5% iid");
  const JsonValue* metrics = first.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("msgs_per_epoch")->number_value(), 12.5);
  EXPECT_EQ(metrics->Find("recall")->number_value(), 1.0);
  EXPECT_TRUE(first.Find("ok")->bool_value());
  EXPECT_EQ(first.Find("error"), nullptr);

  const JsonValue& second = trials->array_items()[1];
  EXPECT_FALSE(second.Find("ok")->bool_value());
  EXPECT_EQ(second.Find("error")->string_value(), "boom \"quoted\"");
  EXPECT_TRUE(second.Find("metrics")->object_members().empty());
}

}  // namespace
}  // namespace kspot::util
