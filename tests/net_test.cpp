#include <gtest/gtest.h>

#include "net/serializer.hpp"

namespace kspot::net {
namespace {

TEST(SerializerTest, ScalarRoundTrip) {
  Writer w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutI32(-12345);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-987654321012345LL);
  Reader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU16(), 0xBEEF);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetI32(), -12345);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetI64(), -987654321012345LL);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializerTest, LittleEndianLayout) {
  Writer w;
  w.PutU16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x02);
  EXPECT_EQ(w.bytes()[1], 0x01);
}

TEST(SerializerTest, StringRoundTrip) {
  Writer w;
  w.PutString("SELECT TOP 1");
  w.PutString("");
  Reader r(w.bytes());
  EXPECT_EQ(r.GetString(), "SELECT TOP 1");
  EXPECT_EQ(r.GetString(), "");
  EXPECT_TRUE(r.ok());
}

TEST(SerializerTest, StringLengthEdgeCases) {
  // Empty and the largest representable string round-trip exactly.
  std::string max_len(Writer::kMaxStringBytes, 'x');
  max_len[0] = 'a';
  max_len[Writer::kMaxStringBytes - 1] = 'z';
  Writer w;
  w.PutString("");
  w.PutString(max_len);
  EXPECT_EQ(w.size(), 2 + 2 + Writer::kMaxStringBytes);
  Reader r(w.bytes());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_EQ(r.GetString(), max_len);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializerTest, OversizedStringAbortsInsteadOfTruncating) {
  // 65536 bytes: one past the u16 length prefix. The old writer cast the
  // length to uint16_t (emitting a prefix of 0 followed by 64 KiB of
  // payload); now it must fail loudly.
  std::string too_long(static_cast<size_t>(Writer::kMaxStringBytes) + 1, 'y');
  EXPECT_DEATH(
      {
        Writer w;
        w.PutString(too_long);
      },
      "exceeds the u16 length prefix");
}

TEST(SerializerTest, TruncatedStringBufferSetsStickyError) {
  Writer w;
  w.PutString("hello world");
  // Chop the buffer mid-payload: the length prefix promises more bytes than
  // the frame carries.
  std::vector<uint8_t> image = w.Take();
  image.resize(image.size() - 4);
  Reader r(image);
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.ok());
  // And chop inside the length prefix itself.
  Reader r2(image.data(), 1);
  EXPECT_EQ(r2.GetString(), "");
  EXPECT_FALSE(r2.ok());
}

TEST(SerializerTest, OverrunSetsStickyError) {
  Writer w;
  w.PutU16(7);
  Reader r(w.bytes());
  EXPECT_EQ(r.GetU32(), 0u);  // needs 4 bytes, only 2 available
  EXPECT_FALSE(r.ok());
  // Sticky: subsequent reads keep failing even if bytes would suffice.
  EXPECT_EQ(r.GetU8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(SerializerTest, HugeGetBytesLengthDoesNotOverflowTheBoundsCheck) {
  // A hostile length near SIZE_MAX used to wrap the `pos_ + n > len_`
  // comparison and pass the check — the read then ran off the buffer. The
  // overflow-safe form must just fail.
  Writer w;
  w.PutU32(42);
  Reader r(w.bytes());
  r.GetU8();  // pos_ > 0 so pos_ + SIZE_MAX wraps
  uint8_t out[1] = {0};
  EXPECT_FALSE(r.GetBytes(out, SIZE_MAX));
  EXPECT_FALSE(r.ok());
}

TEST(SerializerDeathTest, StrictModeAbortsPerGetter) {
  // Each getter at its boundary: 1 byte short of what it needs. Sticky mode
  // is the default for untrusted frames; strict mode is for trusted images
  // where truncation is a programming error and must not zero-fill.
  auto truncated = [](size_t want) {
    Writer w;
    for (size_t i = 0; i + 1 < want; ++i) w.PutU8(0);
    return w.Take();
  };
  {
    std::vector<uint8_t> buf;  // empty: even one byte overruns
    Reader r(buf.data(), 0);
    r.SetStrict(true);
    EXPECT_DEATH(r.GetU8(), "overrun");
  }
  {
    auto buf = truncated(2);
    Reader r(buf);
    r.SetStrict(true);
    EXPECT_DEATH(r.GetU16(), "overrun");
  }
  {
    auto buf = truncated(4);
    Reader r(buf);
    r.SetStrict(true);
    EXPECT_DEATH(r.GetU32(), "overrun");
  }
  {
    auto buf = truncated(8);
    Reader r(buf);
    r.SetStrict(true);
    EXPECT_DEATH(r.GetU64(), "overrun");
  }
  {
    Writer w;
    w.PutString("hello");
    auto buf = w.Take();
    buf.resize(buf.size() - 1);  // cut the payload's last byte
    Reader r(buf);
    r.SetStrict(true);
    EXPECT_DEATH(r.GetString(), "overrun");
  }
  {
    Writer w;
    w.PutU8(1);
    auto buf = w.Take();
    Reader r(buf);
    r.SetStrict(true);
    uint8_t out[2];
    EXPECT_DEATH(r.GetBytes(out, 2), "overrun");
  }
}

TEST(SerializerTest, StrictModeReadsCleanImagesNormally) {
  Writer w;
  w.PutU32(7);
  w.PutString("ok");
  Reader r(w.bytes());
  r.SetStrict(true);
  EXPECT_EQ(r.GetU32(), 7u);
  EXPECT_EQ(r.GetString(), "ok");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializerTest, GetBytesExactAndOverrun) {
  Writer w;
  uint8_t payload[4] = {1, 2, 3, 4};
  w.PutBytes(payload, 4);
  Reader r(w.bytes());
  uint8_t out[4] = {0};
  EXPECT_TRUE(r.GetBytes(out, 4));
  EXPECT_EQ(out[3], 4);
  EXPECT_FALSE(r.GetBytes(out, 1));
}

TEST(SerializerTest, TakeMovesBuffer) {
  Writer w;
  w.PutU32(5);
  auto buf = w.Take();
  EXPECT_EQ(buf.size(), 4u);
}

TEST(SerializerTest, PositionTracksReads) {
  Writer w;
  w.PutU32(1);
  w.PutU32(2);
  Reader r(w.bytes());
  EXPECT_EQ(r.position(), 0u);
  r.GetU32();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace kspot::net
