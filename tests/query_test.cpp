#include <gtest/gtest.h>

#include "query/lexer.hpp"
#include "query/parser.hpp"

namespace kspot::query {
namespace {

// -------------------------------------------------------------------- Lexer

TEST(LexerTest, TokenizesQueryText) {
  auto toks = Lex("SELECT TOP 3 roomid, AVG(sound) FROM sensors");
  ASSERT_GE(toks.size(), 11u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[2].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[2].number, 3.0);
  EXPECT_EQ(toks[4].kind, TokenKind::kComma);
  EXPECT_EQ(toks.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, ComparisonOperators) {
  auto toks = Lex("< <= > >= = != <>");
  EXPECT_EQ(toks[0].kind, TokenKind::kLt);
  EXPECT_EQ(toks[1].kind, TokenKind::kLe);
  EXPECT_EQ(toks[2].kind, TokenKind::kGt);
  EXPECT_EQ(toks[3].kind, TokenKind::kGe);
  EXPECT_EQ(toks[4].kind, TokenKind::kEq);
  EXPECT_EQ(toks[5].kind, TokenKind::kNe);
  EXPECT_EQ(toks[6].kind, TokenKind::kNe);
}

TEST(LexerTest, NumbersIncludeNegativesAndDecimals) {
  auto toks = Lex("-3.5 7.25");
  EXPECT_EQ(toks[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[0].number, -3.5);
  EXPECT_DOUBLE_EQ(toks[1].number, 7.25);
}

TEST(LexerTest, BadCharacterYieldsError) {
  auto toks = Lex("SELECT @");
  bool has_error = false;
  for (const auto& t : toks) has_error |= t.kind == TokenKind::kError;
  EXPECT_TRUE(has_error);
}

// ------------------------------------------------------------------- Parser

TEST(ParserTest, PaperExampleQuery) {
  auto parsed = Parse(
      "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid "
      "EPOCH DURATION 1 min");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const ParsedQuery& q = parsed.value();
  EXPECT_EQ(q.top_k, 1);
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[0].attribute, "roomid");
  EXPECT_FALSE(q.select[0].is_aggregate());
  EXPECT_EQ(q.select[1].aggregate, "AVERAGE");
  EXPECT_EQ(q.select[1].attribute, "sound");
  EXPECT_EQ(q.group_by, "roomid");
  EXPECT_DOUBLE_EQ(q.epoch_duration_s, 60.0);
  EXPECT_EQ(q.history, 0);
  EXPECT_TRUE(Validate(q).ok());
  EXPECT_EQ(Classify(q), QueryClass::kSnapshotTopK);
}

TEST(ParserTest, HistoricQueryWithHistory) {
  auto parsed = Parse(
      "SELECT TOP 5 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 64");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().history, 64);
  EXPECT_TRUE(Validate(parsed.value()).ok());
  EXPECT_EQ(Classify(parsed.value()), QueryClass::kHistoricHorizontal);
}

TEST(ParserTest, VerticalHistoricQuery) {
  auto parsed = Parse(
      "SELECT TOP 3 epoch, AVG(temperature) FROM sensors GROUP BY epoch WITH HISTORY 128");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(Validate(parsed.value()).ok()) << Validate(parsed.value()).message();
  EXPECT_EQ(Classify(parsed.value()), QueryClass::kHistoricVertical);
}

TEST(ParserTest, BasicSelectWithWhere) {
  auto parsed = Parse("SELECT nodeid, sound FROM sensors WHERE sound > 50");
  ASSERT_TRUE(parsed.ok());
  const ParsedQuery& q = parsed.value();
  EXPECT_EQ(q.top_k, 0);
  EXPECT_TRUE(q.has_where);
  EXPECT_EQ(q.where.attribute, "sound");
  EXPECT_EQ(q.where.op, CompareOp::kGt);
  EXPECT_DOUBLE_EQ(q.where.literal, 50.0);
  EXPECT_TRUE(Validate(q).ok());
  EXPECT_EQ(Classify(q), QueryClass::kBasicSelect);
}

TEST(ParserTest, EpochDurationUnits) {
  auto ms = Parse("SELECT sound FROM sensors EPOCH DURATION 500 ms");
  ASSERT_TRUE(ms.ok());
  EXPECT_DOUBLE_EQ(ms.value().epoch_duration_s, 0.5);
  auto sec = Parse("SELECT sound FROM sensors EPOCH DURATION 30 s");
  ASSERT_TRUE(sec.ok());
  EXPECT_DOUBLE_EQ(sec.value().epoch_duration_s, 30.0);
  auto bare = Parse("SELECT sound FROM sensors EPOCH DURATION 10");
  ASSERT_TRUE(bare.ok());
  EXPECT_DOUBLE_EQ(bare.value().epoch_duration_s, 10.0);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("UPDATE sensors").ok());
  EXPECT_FALSE(Parse("SELECT TOP x roomid FROM sensors").ok());
  EXPECT_FALSE(Parse("SELECT roomid FROM").ok());
  EXPECT_FALSE(Parse("SELECT AVG( FROM sensors").ok());
  EXPECT_FALSE(Parse("SELECT roomid FROM sensors GROUP roomid").ok());
  EXPECT_FALSE(Parse("SELECT roomid FROM sensors trailing junk").ok());
  EXPECT_FALSE(Parse("SELECT sound FROM sensors EPOCH DURATION 5 hours").ok());
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto r = Parse("SELECT TOP x roomid FROM sensors");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

// ---------------------------------------------------------------- Validator

TEST(ValidatorTest, RejectsUnknownTableAndAttributes) {
  auto q1 = Parse("SELECT sound FROM motes");
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(Validate(q1.value()).ok());
  auto q2 = Parse("SELECT wobble FROM sensors");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(Validate(q2.value()).ok());
  auto q3 = Parse("SELECT MEDIAN(sound) FROM sensors");
  ASSERT_TRUE(q3.ok());
  EXPECT_FALSE(Validate(q3.value()).ok());
}

TEST(ValidatorTest, TopKRequiresAggregateAndGroupBy) {
  auto no_agg = Parse("SELECT TOP 2 roomid FROM sensors GROUP BY roomid");
  ASSERT_TRUE(no_agg.ok());
  EXPECT_FALSE(Validate(no_agg.value()).ok());
  auto no_group = Parse("SELECT TOP 2 AVG(sound) FROM sensors");
  ASSERT_TRUE(no_group.ok());
  EXPECT_FALSE(Validate(no_group.value()).ok());
}

TEST(ValidatorTest, RejectsWhereOnTopK) {
  auto q = Parse(
      "SELECT TOP 2 roomid, AVG(sound) FROM sensors WHERE sound > 10 GROUP BY roomid");
  ASSERT_TRUE(q.ok());
  auto status = Validate(q.value());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("WHERE"), std::string::npos);
}

TEST(ValidatorTest, GroupByEpochNeedsHistory) {
  auto q = Parse("SELECT TOP 2 epoch, AVG(sound) FROM sensors GROUP BY epoch");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Validate(q.value()).ok());
}

TEST(ValidatorTest, GroupByMustBeMeta) {
  auto q = Parse("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY sound");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Validate(q.value()).ok());
}

TEST(QueryClassTest, Names) {
  EXPECT_EQ(QueryClassName(QueryClass::kSnapshotTopK), "snapshot-topk");
  EXPECT_EQ(QueryClassName(QueryClass::kHistoricVertical), "historic-vertical");
}

}  // namespace
}  // namespace kspot::query
