#include <gtest/gtest.h>

#include "core/mint.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "test_util.hpp"

namespace kspot::core {
namespace {

using kspot::testing::TestBed;

QuerySpec SoundSpec(int k) {
  QuerySpec spec;
  spec.k = k;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = Grouping::kRoom;
  spec.domain_min = 0.0;
  spec.domain_max = 100.0;
  return spec;
}

double AverageRecall(EpochAlgorithm& algo, const Oracle& oracle, sim::Epoch epochs) {
  double recall = 0.0;
  for (sim::Epoch e = 0; e < epochs; ++e) {
    recall += algo.RunEpoch(e).RecallAgainst(oracle.TopK(e));
  }
  return recall / static_cast<double>(epochs);
}

TEST(LossTest, TagDegradesGracefully) {
  sim::NetworkOptions lossy;
  lossy.loss_prob = 0.1;
  auto bed = TestBed::Grid(36, 6, 601, lossy);
  data::GaussianGenerator gen(36, data::Modality::kSound, 2.0, util::Rng(71));
  data::GaussianGenerator ogen(36, data::Modality::kSound, 2.0, util::Rng(71));
  QuerySpec spec = SoundSpec(3);
  TagTopK tag(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  double recall = AverageRecall(tag, oracle, 20);
  EXPECT_GT(recall, 0.5);
  EXPECT_LE(recall, 1.0);
}

TEST(LossTest, MintStaysUsableUnderModerateLoss) {
  sim::NetworkOptions lossy;
  lossy.loss_prob = 0.05;
  auto bed = TestBed::Clustered(36, 6, 607, lossy);
  data::RandomWalkGenerator gen(36, data::Modality::kSound, 1.0, util::Rng(73));
  data::RandomWalkGenerator ogen(36, data::Modality::kSound, 1.0, util::Rng(73));
  QuerySpec spec = SoundSpec(3);
  MintViews mint(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  double recall = AverageRecall(mint, oracle, 30);
  EXPECT_GT(recall, 0.6);
}

TEST(LossTest, RetriesRecoverRecall) {
  auto run = [&](int retries) {
    sim::NetworkOptions opt;
    opt.loss_prob = 0.2;
    opt.max_retries = retries;
    auto bed = TestBed::Grid(25, 4, 613, opt);
    data::GaussianGenerator gen(25, data::Modality::kSound, 1.0, util::Rng(79));
    data::GaussianGenerator ogen(25, data::Modality::kSound, 1.0, util::Rng(79));
    QuerySpec spec = SoundSpec(2);
    TagTopK tag(bed.net.get(), &gen, spec);
    Oracle oracle(&bed.topology, &ogen, spec);
    return AverageRecall(tag, oracle, 20);
  };
  double without = run(0);
  double with = run(4);
  EXPECT_GT(with, without);
  EXPECT_GT(with, 0.9);
}

TEST(LossTest, RetriesCostExtraTransmissions) {
  sim::NetworkOptions opt;
  opt.loss_prob = 0.3;
  opt.max_retries = 3;
  auto lossy = TestBed::Grid(25, 4, 617, opt);
  auto clean = TestBed::Grid(25, 4, 617);
  data::UniformGenerator gen_a(25, data::Modality::kSound, util::Rng(83));
  data::UniformGenerator gen_b(25, data::Modality::kSound, util::Rng(83));
  QuerySpec spec = SoundSpec(2);
  TagTopK a(lossy.net.get(), &gen_a, spec);
  TagTopK b(clean.net.get(), &gen_b, spec);
  for (sim::Epoch e = 0; e < 10; ++e) {
    a.RunEpoch(e);
    b.RunEpoch(e);
  }
  EXPECT_GT(lossy.net->total().messages, clean.net->total().messages);
}

TEST(LossTest, GrayZoneLinksAreLossier) {
  sim::NetworkOptions opt;
  opt.edge_max_loss = 0.6;
  opt.edge_onset = 0.5;
  auto bed = TestBed::Grid(25, 4, 631, opt);
  // Synthetic link endpoints: a short link (adjacent grid cells, well inside
  // the range) versus the longest tree link.
  double short_loss = 1.0, long_loss = 0.0;
  for (sim::NodeId id = 1; id < bed.tree.num_nodes(); ++id) {
    double p = bed.net->LinkLossProb(id, bed.tree.parent(id));
    short_loss = std::min(short_loss, p);
    long_loss = std::max(long_loss, p);
  }
  EXPECT_LE(short_loss, long_loss);
  EXPECT_LE(long_loss, 0.6 + 1e-9);
  // Baseline loss composes with the gray zone.
  sim::NetworkOptions both = opt;
  both.loss_prob = 0.1;
  auto bed2 = TestBed::Grid(25, 4, 631, both);
  for (sim::NodeId id = 1; id < bed2.tree.num_nodes(); ++id) {
    EXPECT_GE(bed2.net->LinkLossProb(id, bed2.tree.parent(id)), 0.1 - 1e-12);
  }
}

TEST(LossTest, GrayZoneDegradesRecallOnSparseDeployments) {
  // A deployment whose tree needs near-range links: with gray-zone loss the
  // recall must drop below the lossless baseline.
  sim::NetworkOptions gray;
  gray.edge_max_loss = 0.9;
  gray.edge_onset = 0.3;
  auto lossy = TestBed::Grid(36, 6, 641, gray);
  auto clean = TestBed::Grid(36, 6, 641);
  data::GaussianGenerator gen_a(36, data::Modality::kSound, 2.0, util::Rng(97));
  data::GaussianGenerator gen_b(36, data::Modality::kSound, 2.0, util::Rng(97));
  data::GaussianGenerator ogen(36, data::Modality::kSound, 2.0, util::Rng(97));
  QuerySpec spec = SoundSpec(3);
  TagTopK tag_lossy(lossy.net.get(), &gen_a, spec);
  TagTopK tag_clean(clean.net.get(), &gen_b, spec);
  Oracle oracle(&lossy.topology, &ogen, spec);
  double lossy_recall = AverageRecall(tag_lossy, oracle, 15);
  // Fresh oracle stream for the clean run (same values).
  data::GaussianGenerator ogen2(36, data::Modality::kSound, 2.0, util::Rng(97));
  Oracle oracle2(&clean.topology, &ogen2, spec);
  double clean_recall = AverageRecall(tag_clean, oracle2, 15);
  EXPECT_LT(lossy_recall, clean_recall);
  EXPECT_DOUBLE_EQ(clean_recall, 1.0);
}

TEST(LossTest, ZeroLossIsExact) {
  // Control: the recall machinery itself reports 1.0 when links are clean.
  auto bed = TestBed::Grid(25, 4, 619);
  data::GaussianGenerator gen(25, data::Modality::kSound, 1.0, util::Rng(89));
  data::GaussianGenerator ogen(25, data::Modality::kSound, 1.0, util::Rng(89));
  QuerySpec spec = SoundSpec(3);
  MintViews mint(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  EXPECT_DOUBLE_EQ(AverageRecall(mint, oracle, 15), 1.0);
}

}  // namespace
}  // namespace kspot::core
