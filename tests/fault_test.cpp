#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fault/churn_engine.hpp"
#include "fault/fault_plan.hpp"
#include "sim/network.hpp"
#include "sim/routing_tree.hpp"
#include "sim/topology.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace kspot::fault {
namespace {

using sim::kNoNode;
using sim::kSinkId;
using sim::NodeId;

sim::Topology GridTopology(size_t nodes, size_t rooms) {
  sim::TopologyOptions topt;
  topt.num_nodes = nodes;
  topt.num_rooms = rooms;
  return sim::MakeGrid(topt);
}

/// Every up node with a physical path to the sink through up nodes.
std::vector<uint8_t> PhysicallyReachable(const sim::Topology& topology,
                                         const std::vector<uint8_t>& up) {
  auto adj = topology.BuildAdjacency();
  std::vector<uint8_t> reach(topology.num_nodes(), 0);
  std::vector<NodeId> stack = {kSinkId};
  reach[kSinkId] = 1;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : adj[u]) {
      if (up[v] && !reach[v]) {
        reach[v] = 1;
        stack.push_back(v);
      }
    }
  }
  return reach;
}

/// Structural invariants every repaired tree must satisfy.
void ExpectTreeInvariants(const sim::RoutingTree& tree, const sim::Topology& topology,
                          const std::vector<uint8_t>& up) {
  size_t n = tree.num_nodes();
  auto reach = PhysicallyReachable(topology, up);
  std::set<NodeId> pre(tree.pre_order().begin(), tree.pre_order().end());
  for (NodeId v = 0; v < n; ++v) {
    if (v == kSinkId) {
      EXPECT_TRUE(tree.attached(v));
      EXPECT_EQ(tree.parent(v), kNoNode);
      continue;
    }
    // Dead nodes are fully stripped: no parent, no children, not attached.
    if (!up[v]) {
      EXPECT_EQ(tree.parent(v), kNoNode) << v;
      EXPECT_TRUE(tree.children(v).empty()) << v;
      EXPECT_FALSE(tree.attached(v)) << v;
      continue;
    }
    // Up nodes are attached exactly when physically reachable over up nodes.
    EXPECT_EQ(tree.attached(v), reach[v] != 0) << v;
    if (tree.attached(v)) {
      NodeId p = tree.parent(v);
      ASSERT_NE(p, kNoNode) << v;
      EXPECT_TRUE(up[p]) << v;
      EXPECT_TRUE(tree.attached(p)) << v;
      EXPECT_EQ(tree.depth(v), tree.depth(p) + 1) << v;
      const auto& siblings = tree.children(p);
      EXPECT_NE(std::find(siblings.begin(), siblings.end(), v), siblings.end());
      EXPECT_TRUE(pre.count(v)) << v;
    } else {
      EXPECT_FALSE(pre.count(v)) << v;
    }
  }
  // pre_order lists parents before children; post_order the reverse.
  std::set<NodeId> seen;
  for (NodeId v : tree.pre_order()) {
    if (v != kSinkId) EXPECT_TRUE(seen.count(tree.parent(v))) << v;
    seen.insert(v);
  }
  EXPECT_EQ(tree.post_order().size(), tree.pre_order().size());
  EXPECT_EQ(tree.AttachedCount(), tree.pre_order().size());
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlanTest, DeterministicFromSeed) {
  sim::Topology topology = GridTopology(49, 8);
  FaultPlanOptions opt;
  opt.horizon = 200;
  opt.crash_prob = 0.01;
  opt.mean_downtime = 10;
  opt.degrade_prob = 0.005;
  FaultPlan a = FaultPlan::Generate(topology, opt, 7);
  FaultPlan b = FaultPlan::Generate(topology, opt, 7);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_EQ(a.events[i].extra_loss, b.events[i].extra_loss);
  }
  FaultPlan c = FaultPlan::Generate(topology, opt, 8);
  EXPECT_FALSE(a.events.size() == c.events.size() &&
               std::equal(a.events.begin(), a.events.end(), c.events.begin(),
                          [](const FaultEvent& x, const FaultEvent& y) {
                            return x.at == y.at && x.node == y.node && x.kind == y.kind;
                          }));
}

TEST(FaultPlanTest, EventsSortedSparedSinkAndInsideHorizon) {
  sim::Topology topology = GridTopology(49, 8);
  FaultPlanOptions opt;
  opt.horizon = 100;
  opt.crash_prob = 0.02;
  opt.mean_downtime = 20;
  opt.degrade_prob = 0.02;
  FaultPlan plan = FaultPlan::Generate(topology, opt, 3);
  EXPECT_GT(plan.CountKind(FaultEvent::Kind::kCrash), 0u);
  EXPECT_GT(plan.CountKind(FaultEvent::Kind::kRecover), 0u);
  for (size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);
  }
  for (const FaultEvent& ev : plan.events) {
    EXPECT_NE(ev.node, kSinkId);
    EXPECT_GE(ev.at, 1u);  // epoch 0 stays clean
    EXPECT_LT(ev.at, opt.horizon);
  }
}

TEST(FaultPlanTest, RecoveryFollowsCrashPerNode) {
  sim::Topology topology = GridTopology(25, 4);
  FaultPlanOptions opt;
  opt.horizon = 300;
  opt.crash_prob = 0.01;
  opt.mean_downtime = 8;
  FaultPlan plan = FaultPlan::Generate(topology, opt, 11);
  // Per node, crash and recover events alternate starting with a crash.
  std::vector<int> state(topology.num_nodes(), 0);  // 0 = up, 1 = down
  for (const FaultEvent& ev : plan.events) {
    if (ev.kind == FaultEvent::Kind::kCrash) {
      EXPECT_EQ(state[ev.node], 0) << "double crash on node " << ev.node;
      state[ev.node] = 1;
    } else if (ev.kind == FaultEvent::Kind::kRecover) {
      EXPECT_EQ(state[ev.node], 1) << "recovery without crash on node " << ev.node;
      state[ev.node] = 0;
    }
  }
}

/// FNV-1a over the full event stream (epoch, kind, node, quantized loss).
uint64_t PlanDigest(const FaultPlan& plan) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const FaultEvent& ev : plan.events) {
    mix(ev.at);
    mix(static_cast<uint64_t>(ev.kind));
    mix(ev.node);
    mix(static_cast<uint64_t>(ev.extra_loss * 1e6));
  }
  return h;
}

FaultPlanOptions GoldenOptions() {
  FaultPlanOptions opt;
  opt.horizon = 120;
  opt.crash_prob = 0.01;
  opt.mean_downtime = 10;
  opt.degrade_prob = 0.008;
  opt.degrade_extra_loss = 0.35;
  opt.degrade_duration = 6;
  return opt;
}

// Golden pin of the generated plan for fixed seeds. Any change to the
// sampling scheme, the per-node substream derivation, the sweep order, or
// the horizon boundary handling moves these digests — regenerating them is
// a deliberate, reviewed act, never a silent drift.
TEST(FaultPlanTest, GoldenPlanPinnedForFixedSeeds) {
  sim::Topology topology = GridTopology(49, 8);
  FaultPlan plan = FaultPlan::Generate(topology, GoldenOptions(), 2026);
  EXPECT_EQ(plan.events.size(), 167u);
  EXPECT_EQ(plan.CountKind(FaultEvent::Kind::kCrash), 45u);
  EXPECT_EQ(plan.CountKind(FaultEvent::Kind::kRecover), 41u);
  EXPECT_EQ(plan.CountKind(FaultEvent::Kind::kDegradeStart), 41u);
  EXPECT_EQ(plan.CountKind(FaultEvent::Kind::kDegradeEnd), 40u);
  EXPECT_EQ(PlanDigest(plan), 0x83ee4679875e41f9ULL);
  // The head of the stream, spelled out so a digest mismatch has a
  // human-readable witness.
  ASSERT_GE(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].at, 2u);
  EXPECT_EQ(plan.events[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(plan.events[0].node, 3u);
  EXPECT_EQ(plan.events[1].at, 2u);
  EXPECT_EQ(plan.events[1].node, 14u);
  EXPECT_EQ(plan.events[2].at, 6u);
  EXPECT_EQ(plan.events[2].kind, FaultEvent::Kind::kDegradeStart);
  EXPECT_EQ(plan.events[2].node, 5u);
  EXPECT_DOUBLE_EQ(plan.events[2].extra_loss, 0.35);
  EXPECT_EQ(plan.events[3].at, 7u);
  EXPECT_EQ(plan.events[3].kind, FaultEvent::Kind::kDegradeStart);
  EXPECT_EQ(plan.events[3].node, 20u);

  FaultPlan other = FaultPlan::Generate(topology, GoldenOptions(), 7);
  EXPECT_EQ(other.events.size(), 199u);
  EXPECT_EQ(PlanDigest(other), 0x02fc031decf6b787ULL);
}

// The horizon boundary audit: truncating the horizon must act as a pure
// filter on the event stream — events strictly before the shorter horizon
// (including at exactly horizon-1) are identical, and nothing else sneaks
// in. In particular a recovery that lands at or past the shorter horizon
// vanishes and its node simply stays down.
TEST(FaultPlanTest, ShorterHorizonIsPurePrefixFilter) {
  sim::Topology topology = GridTopology(49, 8);
  FaultPlanOptions opt = GoldenOptions();
  FaultPlan longer = FaultPlan::Generate(topology, opt, 2026);
  for (sim::Epoch horizon : {120u, 90u, 61u, 17u, 2u}) {
    FaultPlanOptions shorter_opt = opt;
    shorter_opt.horizon = horizon;
    FaultPlan shorter = FaultPlan::Generate(topology, shorter_opt, 2026);
    std::vector<FaultEvent> expect;
    for (const FaultEvent& ev : longer.events) {
      if (ev.at < horizon) expect.push_back(ev);
    }
    ASSERT_EQ(shorter.events.size(), expect.size()) << "horizon " << horizon;
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(shorter.events[i].at, expect[i].at);
      EXPECT_EQ(shorter.events[i].kind, expect[i].kind);
      EXPECT_EQ(shorter.events[i].node, expect[i].node);
      EXPECT_EQ(shorter.events[i].extra_loss, expect[i].extra_loss);
    }
  }
}

TEST(FaultPlanTest, RecoveriesPastHorizonLeaveNodesDown) {
  sim::Topology topology = GridTopology(25, 4);
  FaultPlanOptions opt;
  opt.horizon = 5;
  opt.crash_prob = 1.0;       // every node crashes at epoch 1
  opt.mean_downtime = 100;    // downtimes mostly outlast the horizon
  opt.max_down_fraction = 1.0;
  FaultPlan plan = FaultPlan::Generate(topology, opt, 9);
  // Every sensor crashes at epoch 1; the handful whose short downtimes land
  // inside the horizon recover and (with p = 1) immediately crash again.
  EXPECT_GE(plan.CountKind(FaultEvent::Kind::kCrash), topology.num_sensors());
  std::vector<int> down(topology.num_nodes(), 0);
  for (const FaultEvent& ev : plan.events) {
    EXPECT_LT(ev.at, opt.horizon);
    if (ev.kind == FaultEvent::Kind::kCrash) down[ev.node] = 1;
    if (ev.kind == FaultEvent::Kind::kRecover) {
      EXPECT_EQ(down[ev.node], 1);
      down[ev.node] = 0;
    }
  }
  // With 1 + NextBounded(200) epochs of downtime from epoch 1, at least one
  // node's recovery lands past epoch 4 and is dropped: it stays down.
  size_t still_down = 0;
  for (sim::NodeId v = 1; v < topology.num_nodes(); ++v) still_down += down[v];
  EXPECT_GT(still_down, 0u);
}

TEST(FaultPlanTest, DegenerateHorizonsAndZeroCapYieldEmptyPlans) {
  sim::Topology topology = GridTopology(25, 4);
  FaultPlanOptions opt;
  opt.crash_prob = 1.0;
  opt.degrade_prob = 1.0;
  opt.mean_downtime = 3;
  opt.max_down_fraction = 1.0;
  for (sim::Epoch horizon : {0u, 1u}) {
    opt.horizon = horizon;
    EXPECT_TRUE(FaultPlan::Generate(topology, opt, 4).events.empty()) << horizon;
  }
  // Horizon 2 leaves exactly epoch 1: with p = 1 every sensor crashes there
  // (the last schedulable epoch is horizon - 1).
  opt.horizon = 2;
  opt.degrade_prob = 0.0;
  FaultPlan edge = FaultPlan::Generate(topology, opt, 4);
  EXPECT_EQ(edge.events.size(), topology.num_sensors());
  for (const FaultEvent& ev : edge.events) {
    EXPECT_EQ(ev.at, 1u);
    EXPECT_EQ(ev.kind, FaultEvent::Kind::kCrash);
  }
  // A zero max-down cap forbids every crash, exactly like the per-epoch
  // generator's short-circuited draw.
  opt.horizon = 50;
  opt.max_down_fraction = 0.0;
  EXPECT_TRUE(FaultPlan::Generate(topology, opt, 4).events.empty());
}

TEST(FaultPlanTest, CrashIncidenceMatchesBernoulliProcess) {
  // Distributional sanity for the geometric skip-sampling: with permanent
  // crashes the fraction of sensors that ever crash over H-1 eligible epochs
  // must track 1 - (1-p)^(H-1). 400 sensors, p=0.002, H=200: expectation
  // ~0.328, sigma ~0.023 — a +/- 5 sigma band stays meaningful.
  sim::Topology topology = GridTopology(401, 16);
  FaultPlanOptions opt;
  opt.horizon = 200;
  opt.crash_prob = 0.002;
  opt.mean_downtime = 0;
  opt.max_down_fraction = 1.0;
  size_t crashes = 0;
  FaultPlan plan = FaultPlan::Generate(topology, opt, 31337);
  crashes = plan.CountKind(FaultEvent::Kind::kCrash);
  double frac = static_cast<double>(crashes) / static_cast<double>(topology.num_sensors());
  EXPECT_GT(frac, 0.328 - 5 * 0.023);
  EXPECT_LT(frac, 0.328 + 5 * 0.023);
}

TEST(FaultPlanTest, RespectsMaxDownFraction) {
  sim::Topology topology = GridTopology(25, 4);
  FaultPlanOptions opt;
  opt.horizon = 400;
  opt.crash_prob = 0.5;  // hot plan
  opt.mean_downtime = 0;  // permanent, so the cap binds
  opt.max_down_fraction = 0.25;
  FaultPlan plan = FaultPlan::Generate(topology, opt, 5);
  size_t cap = static_cast<size_t>(0.25 * static_cast<double>(topology.num_sensors()));
  EXPECT_LE(plan.CountKind(FaultEvent::Kind::kCrash), cap);
}

// ---------------------------------------------------- RoutingTree::Repair

TEST(TreeRepairTest, StripsDeadAndReattachesAllReachable) {
  sim::Topology topology = GridTopology(49, 8);
  util::Rng build_rng(1);
  sim::RoutingTree tree = sim::RoutingTree::BuildClusterAware(topology, build_rng);
  std::vector<uint8_t> up(topology.num_nodes(), 1);
  util::Rng kill_rng(99);
  for (NodeId v = 1; v < topology.num_nodes(); ++v) {
    if (kill_rng.NextBernoulli(0.2)) up[v] = 0;
  }
  util::Rng repair_rng(7);
  sim::RepairReport report =
      tree.Repair(topology, [&](NodeId id) { return up[id] != 0; }, repair_rng);
  EXPECT_TRUE(report.changed);
  EXPECT_GT(report.dead_removed, 0u);
  ExpectTreeInvariants(tree, topology, up);
}

TEST(TreeRepairTest, NoOpWhenNothingDied) {
  sim::Topology topology = GridTopology(25, 4);
  util::Rng build_rng(1);
  sim::RoutingTree tree = sim::RoutingTree::BuildClusterAware(topology, build_rng);
  std::vector<NodeId> before;
  for (NodeId v = 0; v < topology.num_nodes(); ++v) before.push_back(tree.parent(v));
  util::Rng repair_rng(7);
  sim::RepairReport report = tree.Repair(topology, [](NodeId) { return true; }, repair_rng);
  EXPECT_FALSE(report.changed);
  EXPECT_TRUE(report.reattached.empty());
  for (NodeId v = 0; v < topology.num_nodes(); ++v) EXPECT_EQ(tree.parent(v), before[v]);
}

TEST(TreeRepairTest, DeterministicAcrossIdenticalRuns) {
  sim::Topology topology = GridTopology(100, 16);
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    util::Rng ra(seed), rb(seed);
    sim::RoutingTree ta = sim::RoutingTree::BuildClusterAware(topology, ra);
    sim::RoutingTree tb = sim::RoutingTree::BuildClusterAware(topology, rb);
    std::vector<uint8_t> up(topology.num_nodes(), 1);
    util::Rng kill_rng(seed * 31);
    for (NodeId v = 1; v < topology.num_nodes(); ++v) {
      if (kill_rng.NextBernoulli(0.15)) up[v] = 0;
    }
    util::Rng rra(seed ^ 0xAB), rrb(seed ^ 0xAB);
    auto is_up = [&](NodeId id) { return up[id] != 0; };
    ta.Repair(topology, is_up, rra);
    tb.Repair(topology, is_up, rrb);
    for (NodeId v = 0; v < topology.num_nodes(); ++v) {
      EXPECT_EQ(ta.parent(v), tb.parent(v)) << "seed " << seed << " node " << v;
    }
    EXPECT_EQ(ta.pre_order(), tb.pre_order());
  }
}

TEST(TreeRepairTest, OrphanPrefersSameRoomParent) {
  // 0 sink(0,0) r0; 1 (1,0) r1; 2 (1,1) r2; 3 (2.9,0.5) r1 (dies);
  // 4 (2,0.5) r2, child of 3. With range 1.2 the orphan 4 hears both 1 (r1)
  // and 2 (r2) and must adopt its roommate 2.
  sim::Topology topology({{0, 0}, {1, 0}, {1, 1}, {2.9, 0.5}, {2, 0.5}},
                         {0, 1, 2, 1, 2}, /*comm_range=*/1.2);
  sim::RoutingTree tree = sim::RoutingTree::FromParents({kNoNode, 0, 0, 1, 3});
  std::vector<uint8_t> up = {1, 1, 1, 0, 1};
  for (uint64_t seed = 0; seed < 8; ++seed) {  // any beacon arrival order
    sim::RoutingTree t = tree;
    util::Rng rng(seed);
    sim::RepairReport report =
        t.Repair(topology, [&](NodeId id) { return up[id] != 0; }, rng);
    ASSERT_EQ(report.reattached.size(), 1u);
    EXPECT_EQ(report.reattached[0].node, 4);
    EXPECT_EQ(t.parent(4), 2) << "seed " << seed;
    EXPECT_TRUE(t.attached(4));
  }
  // Without the roommate the orphan falls back to first-heard (node 1).
  up[2] = 0;
  util::Rng rng(3);
  sim::RoutingTree t = tree;
  t.Repair(topology, [&](NodeId id) { return up[id] != 0; }, rng);
  EXPECT_EQ(t.parent(4), 1);
}

TEST(TreeRepairTest, SinkAdjacentFailureReattachesWholeSubtree) {
  sim::Topology topology = GridTopology(100, 16);
  util::Rng build_rng(5);
  sim::RoutingTree tree = sim::RoutingTree::BuildClusterAware(topology, build_rng);
  // Kill the sink child with the largest subtree — the worst single failure.
  NodeId victim = kNoNode;
  size_t biggest = 0;
  for (NodeId c : tree.children(kSinkId)) {
    if (tree.SubtreeSize(c) > biggest) {
      biggest = tree.SubtreeSize(c);
      victim = c;
    }
  }
  ASSERT_NE(victim, kNoNode);
  ASSERT_GT(biggest, 1u);
  std::vector<uint8_t> up(topology.num_nodes(), 1);
  up[victim] = 0;
  util::Rng repair_rng(9);
  sim::RepairReport report =
      tree.Repair(topology, [&](NodeId id) { return up[id] != 0; }, repair_rng);
  EXPECT_GE(report.reattached.size(), 1u);
  ExpectTreeInvariants(tree, topology, up);
  // A grid stays connected after one interior failure: nobody detached.
  EXPECT_EQ(report.detached, 0u);
  EXPECT_EQ(tree.AttachedCount(), topology.num_nodes() - 1);
}

TEST(TreeRepairTest, PartitionLeavesNodesDetachedUntilRecovery) {
  // A chain 0-1-2: killing 1 strands 2; reviving 1 re-attaches both.
  sim::Topology topology({{0, 0}, {1, 0}, {2, 0}}, {0, 0, 0}, /*comm_range=*/1.2);
  sim::RoutingTree tree = sim::RoutingTree::FromParents({kNoNode, 0, 1});
  std::vector<uint8_t> up = {1, 0, 1};
  util::Rng rng(1);
  sim::RepairReport report =
      tree.Repair(topology, [&](NodeId id) { return up[id] != 0; }, rng);
  EXPECT_EQ(report.detached, 1u);
  EXPECT_FALSE(tree.attached(2));
  EXPECT_EQ(tree.parent(2), kNoNode);
  up[1] = 1;
  sim::RepairReport second =
      tree.Repair(topology, [&](NodeId id) { return up[id] != 0; }, rng);
  EXPECT_EQ(second.detached, 0u);
  EXPECT_TRUE(tree.attached(1));
  EXPECT_TRUE(tree.attached(2));
}

// -------------------------------------------------------------- ChurnEngine

TEST(ChurnEngineTest, AppliesScheduledEventsAndRepairs) {
  testing::TestBed bed = testing::TestBed::Grid(25, 4, 21);
  FaultPlan plan;
  plan.seed = 21;
  plan.events = {{2, FaultEvent::Kind::kCrash, 7, 0.0},
                 {4, FaultEvent::Kind::kDegradeStart, 3, 0.4},
                 {6, FaultEvent::Kind::kRecover, 7, 0.0},
                 {8, FaultEvent::Kind::kDegradeEnd, 3, 0.0}};
  ChurnEngine churn(bed.net.get(), &bed.tree, plan);

  ChurnReport r0 = churn.BeginEpoch(0);
  EXPECT_FALSE(r0.topology_changed);
  EXPECT_TRUE(bed.net->NodeAlive(7));

  ChurnReport r2 = churn.BeginEpoch(2);
  EXPECT_EQ(r2.crashes, 1u);
  EXPECT_TRUE(r2.topology_changed);
  EXPECT_FALSE(bed.net->NodeAlive(7));
  EXPECT_FALSE(bed.tree.attached(7));

  ChurnReport r4 = churn.BeginEpoch(4);
  EXPECT_EQ(r4.degrade_changes, 1u);
  EXPECT_FALSE(r4.topology_changed);  // degradation alone never repairs
  EXPECT_GT(bed.net->NodeExtraLoss(3), 0.0);

  ChurnReport r6 = churn.BeginEpoch(6);
  EXPECT_EQ(r6.recoveries, 1u);
  EXPECT_TRUE(r6.topology_changed);
  EXPECT_TRUE(bed.net->NodeAlive(7));
  EXPECT_TRUE(bed.tree.attached(7));

  ChurnReport r8 = churn.BeginEpoch(8);
  EXPECT_EQ(bed.net->NodeExtraLoss(3), 0.0);
  EXPECT_FALSE(r8.topology_changed);
  EXPECT_GE(churn.repair_events(), 2u);
}

TEST(ChurnEngineTest, ChargesJoinHandshakesToRepairPhase) {
  testing::TestBed bed = testing::TestBed::Grid(49, 8, 33);
  // Kill an interior node with children so the repair must re-parent.
  NodeId victim = kNoNode;
  for (NodeId v = 1; v < bed.topology.num_nodes(); ++v) {
    if (!bed.tree.children(v).empty()) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kNoNode);
  FaultPlan plan;
  plan.seed = 33;
  plan.events = {{1, FaultEvent::Kind::kCrash, victim, 0.0}};
  ChurnEngine churn(bed.net.get(), &bed.tree, plan);
  churn.BeginEpoch(0);
  ChurnReport report = churn.BeginEpoch(1);
  EXPECT_GE(report.reattached, 1u);
  EXPECT_EQ(churn.repair_messages(), 2u * report.reattached);
  EXPECT_EQ(bed.net->PhaseTotal("fault.repair").messages, churn.repair_messages());
  EXPECT_GT(bed.net->PhaseTotal("fault.repair").tx_energy_j, 0.0);
}

TEST(ChurnEngineTest, DetectsBatteryDeathAndRepairs) {
  sim::NetworkOptions net_opt;
  net_opt.battery_j = 1e-4;  // a frame or two
  testing::TestBed bed = testing::TestBed::Grid(9, 4, 5);
  bed.net = std::make_unique<sim::Network>(&bed.topology, &bed.tree, net_opt,
                                           util::Rng(5 ^ 0xBEEF));
  ChurnEngine churn(bed.net.get(), &bed.tree, FaultPlan{});
  EXPECT_FALSE(churn.BeginEpoch(0).topology_changed);
  // Burn a node's battery with traffic, then the next epoch must notice.
  NodeId leaf = bed.tree.post_order().front();
  ASSERT_NE(leaf, kSinkId);
  while (bed.net->meter(leaf).alive()) bed.net->UnicastToParent(leaf, 64);
  ChurnReport report = churn.BeginEpoch(1);
  EXPECT_GE(report.battery_deaths, 1u);
  EXPECT_TRUE(report.topology_changed);
  EXPECT_FALSE(bed.tree.attached(leaf));
}

TEST(ChurnEngineTest, SinkBatteryDeathEndsRepairsInsteadOfAdoptingDeadSink) {
  sim::NetworkOptions net_opt;
  net_opt.battery_j = 1e-4;
  testing::TestBed bed = testing::TestBed::Grid(9, 4, 5, net_opt);
  ChurnEngine churn(bed.net.get(), &bed.tree, FaultPlan{});
  churn.BeginEpoch(0);
  // Drain the sink (it receives every message, so this is the realistic
  // first casualty when the base station is battery-budgeted by mistake).
  NodeId child = bed.tree.children(kSinkId).front();
  while (bed.net->meter(kSinkId).alive()) bed.net->UnicastToParent(child, 64);
  ChurnReport report = churn.BeginEpoch(1);
  EXPECT_GE(report.battery_deaths, 1u);
  // No repair runs against a dead sink: nobody is re-adopted under it and
  // no handshakes are charged into the black hole.
  EXPECT_EQ(report.reattached, 0u);
  EXPECT_EQ(churn.repair_messages(), 0u);
  EXPECT_FALSE(bed.net->NodeAlive(kSinkId));
}

// ------------------------------------------------- Network fault controls

TEST(NetworkFaultTest, AdminDownBlocksTrafficWithoutTouchingBattery) {
  testing::TestBed bed = testing::TestBed::Grid(9, 4, 5);
  NodeId leaf = bed.tree.post_order().front();
  ASSERT_NE(leaf, kSinkId);
  EXPECT_TRUE(bed.net->UnicastToParent(leaf, 16));
  bed.net->SetNodeUp(leaf, false);
  EXPECT_FALSE(bed.net->NodeAlive(leaf));
  EXPECT_TRUE(bed.net->meter(leaf).alive());  // battery untouched by the crash
  EXPECT_FALSE(bed.net->UnicastToParent(leaf, 16));
  size_t alive_down = bed.net->AliveCount();
  bed.net->SetNodeUp(leaf, true);
  EXPECT_EQ(bed.net->AliveCount(), alive_down + 1);
  EXPECT_TRUE(bed.net->UnicastToParent(leaf, 16));
}

TEST(NetworkFaultTest, ExtraLossCompoundsOnLinks) {
  testing::TestBed bed = testing::TestBed::Grid(9, 4, 5);
  NodeId leaf = bed.tree.post_order().front();
  NodeId parent = bed.tree.parent(leaf);
  double base = bed.net->LinkLossProb(leaf, parent);
  bed.net->SetNodeExtraLoss(leaf, 0.3);
  double one_end = bed.net->LinkLossProb(leaf, parent);
  EXPECT_NEAR(one_end, base + (1 - base) * 0.3, 1e-12);
  bed.net->SetNodeExtraLoss(parent, 0.5);
  double both_ends = bed.net->LinkLossProb(leaf, parent);
  EXPECT_NEAR(both_ends, 1 - (1 - one_end) * 0.5, 1e-12);
  EXPECT_LE(both_ends, 1.0);
}

}  // namespace
}  // namespace kspot::fault
