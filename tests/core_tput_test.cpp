#include <gtest/gtest.h>

#include "agg/group_view.hpp"
#include "core/tja.hpp"
#include "core/tput.hpp"
#include "test_util.hpp"

namespace kspot::core {
namespace {

using kspot::testing::TestBed;

std::vector<agg::RankedItem> HistoricOracle(const HistorySource& history, agg::AggKind kind,
                                            size_t k) {
  agg::GroupView view;
  for (sim::NodeId id = 1; id < history.num_nodes(); ++id) {
    std::vector<double> w = history.MaterializeWindow(id);
    for (size_t t = 0; t < w.size(); ++t) {
      view.AddReading(static_cast<sim::GroupId>(t), w[t]);
    }
  }
  return view.TopK(kind, k);
}

bool SameItems(const std::vector<agg::RankedItem>& a, const std::vector<agg::RankedItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].group != b[i].group || std::abs(a[i].value - b[i].value) > 1e-9) return false;
  }
  return true;
}

TEST(TputTest, ExactAcrossSeedsAndK) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    for (int k : {1, 3, 8}) {
      auto bed = TestBed::Grid(25, 4, 500 + seed);
      data::UniformGenerator gen(25, data::Modality::kSound, util::Rng(seed * 7 + 1));
      GeneratorHistory history(&gen, 25, 0, 32);
      HistoricOptions opt;
      opt.k = k;
      Tput tput(bed.net.get(), &history, opt);
      HistoricResult got = tput.Run();
      auto want = HistoricOracle(history, opt.agg, static_cast<size_t>(k));
      EXPECT_TRUE(SameItems(got.items, want)) << "seed " << seed << " k " << k;
    }
  }
}

TEST(TputTest, KLargerThanWindowReturnsEverything) {
  auto bed = TestBed::Grid(16, 4, 521);
  data::UniformGenerator gen(16, data::Modality::kSound, util::Rng(11));
  GeneratorHistory history(&gen, 16, 0, 8);
  HistoricOptions opt;
  opt.k = 20;  // > window
  Tput tput(bed.net.get(), &history, opt);
  HistoricResult got = tput.Run();
  EXPECT_EQ(got.items.size(), 8u);
  auto want = HistoricOracle(history, opt.agg, 8);
  EXPECT_TRUE(SameItems(got.items, want));
}

TEST(TputTest, PhaseStructureAccounted) {
  auto bed = TestBed::Grid(25, 4, 523);
  data::UniformGenerator gen(25, data::Modality::kSound, util::Rng(13));
  GeneratorHistory history(&gen, 25, 0, 32);
  HistoricOptions opt;
  opt.k = 3;
  Tput tput(bed.net.get(), &history, opt);
  tput.Run();
  EXPECT_GT(bed.net->PhaseTotal("tput.p1").payload_bytes, 0u);
  EXPECT_GT(bed.net->PhaseTotal("tput.p2").payload_bytes, 0u);
  EXPECT_GT(bed.net->PhaseTotal("tput.p3").payload_bytes, 0u);
}

TEST(TputTest, TjaBeatsTputInBytesOnSkewedData) {
  // Spiky data gives every node a distinct set of hot keys: TPUT's flat
  // relaying pays full path cost for each, TJA unions in-network.
  auto tja_bed = TestBed::Grid(49, 4, 541);
  auto tput_bed = TestBed::Grid(49, 4, 541);
  data::SpikeGenerator g1(49, data::Modality::kSound, 20.0, 0.05, util::Rng(17));
  data::SpikeGenerator g2(49, data::Modality::kSound, 20.0, 0.05, util::Rng(17));
  GeneratorHistory h1(&g1, 49, 0, 64);
  GeneratorHistory h2(&g2, 49, 0, 64);
  HistoricOptions opt;
  opt.k = 5;
  Tja tja(tja_bed.net.get(), &h1, opt);
  Tput tput(tput_bed.net.get(), &h2, opt);
  auto a = tja.Run();
  auto b = tput.Run();
  EXPECT_TRUE(SameItems(a.items, b.items));
  EXPECT_LT(tja_bed.net->total().payload_bytes, tput_bed.net->total().payload_bytes);
}

TEST(TputTest, CandidateSetContainsAtLeastK) {
  auto bed = TestBed::Grid(25, 4, 547);
  data::GaussianGenerator gen(25, data::Modality::kSound, 5.0, util::Rng(19));
  GeneratorHistory history(&gen, 25, 0, 32);
  HistoricOptions opt;
  opt.k = 4;
  Tput tput(bed.net.get(), &history, opt);
  HistoricResult got = tput.Run();
  EXPECT_GE(got.lsink_size, 4u);
}

}  // namespace
}  // namespace kspot::core
