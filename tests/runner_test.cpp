#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>

#include "runner/experiment_engine.hpp"
#include "runner/report.hpp"
#include "runner/scenario_registry.hpp"
#include "scenarios.hpp"
#include "util/rng.hpp"

namespace kspot::runner {
namespace {

Scenario ToyScenario(size_t trial_count) {
  Scenario s;
  s.name = "toy";
  s.id = "T0";
  s.title = "toy sweep";
  s.make_trials = [trial_count](const SweepOptions& opt) {
    std::vector<Trial> trials;
    for (size_t i = 0; i < trial_count; ++i) {
      Trial t;
      t.spec.algorithm = i % 2 == 0 ? "A" : "B";
      t.spec.seed = opt.seed != 0 ? opt.seed : 100 + i;
      t.spec.params = {{"i", std::to_string(i)}};
      uint64_t seed = t.spec.seed + i;
      t.run = [seed]() -> MetricList {
        util::Rng rng(seed);
        double acc = 0.0;
        for (int n = 0; n < 1000; ++n) acc += rng.NextDouble();
        return {{"acc", acc}, {"first", static_cast<double>(util::Rng(seed).NextU64())}};
      };
      trials.push_back(std::move(t));
    }
    return trials;
  };
  return s;
}

// ---------------------------------------------------------------- registry

TEST(ScenarioRegistryTest, RegisterFindEnumerate) {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.Register(ToyScenario(1)).ok());
  EXPECT_EQ(registry.size(), 1u);
  ASSERT_NE(registry.Find("toy"), nullptr);
  EXPECT_EQ(registry.Find("toy")->id, "T0");
  EXPECT_EQ(registry.Find("nope"), nullptr);
  EXPECT_EQ(registry.Names(), std::vector<std::string>{"toy"});
}

TEST(ScenarioRegistryTest, RejectsDuplicatesAndInvalid) {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.Register(ToyScenario(1)).ok());
  EXPECT_FALSE(registry.Register(ToyScenario(1)).ok());  // duplicate name

  Scenario unnamed;
  unnamed.make_trials = [](const SweepOptions&) { return std::vector<Trial>{}; };
  EXPECT_FALSE(registry.Register(unnamed).ok());

  Scenario no_factory;
  no_factory.name = "empty";
  EXPECT_FALSE(registry.Register(no_factory).ok());
}

TEST(ScenarioRegistryTest, BenchCatalogueRegistersAtLeastSixteen) {
  ScenarioRegistry registry;
  bench::RegisterAllScenarios(registry);
  EXPECT_GE(registry.size(), 16u);
  // The names the CLI and CI depend on.
  for (const char* name :
       {"fig1_scenario", "fig3_gui_scenario", "msgs_vs_k", "msgs_vs_n", "lifetime",
        "tja_vs_baselines", "tja_phases", "fila_vs_mint", "naive_error", "loss",
        "history_local", "ablation_mint", "churn_lifetime", "churn_accuracy",
        "repair_cost", "throughput"}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
  // Ids are unique.
  std::set<std::string> ids;
  for (const Scenario* s : registry.All()) ids.insert(s->id);
  EXPECT_EQ(ids.size(), registry.size());
}

// ------------------------------------------------------------------ engine

TEST(ExperimentEngineTest, PreservesEnumerationOrderAndSpecs) {
  ExperimentEngine engine({.threads = 4});
  ScenarioRun run = engine.Run(ToyScenario(9));
  ASSERT_EQ(run.trials.size(), 9u);
  EXPECT_TRUE(run.AllOk());
  for (size_t i = 0; i < run.trials.size(); ++i) {
    EXPECT_EQ(run.trials[i].spec.index, i);
    EXPECT_EQ(run.trials[i].spec.scenario, "toy");
    EXPECT_EQ(run.trials[i].spec.params[0].second, std::to_string(i));
  }
}

TEST(ExperimentEngineTest, CapturesTrialExceptions) {
  Scenario s;
  s.name = "throwing";
  s.make_trials = [](const SweepOptions&) {
    std::vector<Trial> trials;
    Trial good;
    good.run = []() -> MetricList { return {{"v", 1.0}}; };
    trials.push_back(std::move(good));
    Trial bad;
    bad.run = []() -> MetricList { throw std::runtime_error("kaboom"); };
    trials.push_back(std::move(bad));
    return trials;
  };
  ExperimentEngine engine({.threads = 2});
  ScenarioRun run = engine.Run(s);
  ASSERT_EQ(run.trials.size(), 2u);
  EXPECT_TRUE(run.trials[0].ok);
  EXPECT_FALSE(run.trials[1].ok);
  EXPECT_EQ(run.trials[1].error, "kaboom");
  EXPECT_FALSE(run.AllOk());
}

/// Metrics must be a pure function of the trial spec: any thread count
/// produces byte-identical metric sequences.
void ExpectIdenticalRuns(const ScenarioRun& a, const ScenarioRun& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (size_t i = 0; i < a.trials.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    EXPECT_EQ(a.trials[i].spec.algorithm, b.trials[i].spec.algorithm);
    EXPECT_EQ(a.trials[i].spec.params, b.trials[i].spec.params);
    EXPECT_EQ(a.trials[i].spec.seed, b.trials[i].spec.seed);
    EXPECT_EQ(a.trials[i].ok, b.trials[i].ok);
    ASSERT_EQ(a.trials[i].metrics.size(), b.trials[i].metrics.size());
    for (size_t m = 0; m < a.trials[i].metrics.size(); ++m) {
      EXPECT_EQ(a.trials[i].metrics[m].first, b.trials[i].metrics[m].first);
      // Bit-exact, not approximate: trials own their Rng/Network state.
      EXPECT_EQ(a.trials[i].metrics[m].second, b.trials[i].metrics[m].second);
    }
  }
}

TEST(ExperimentEngineTest, ToyDeterministicAcrossThreadCounts) {
  ScenarioRun single = ExperimentEngine({.threads = 1}).Run(ToyScenario(16));
  ScenarioRun pooled = ExperimentEngine({.threads = 8}).Run(ToyScenario(16));
  EXPECT_EQ(single.threads, 1u);
  EXPECT_EQ(pooled.threads, 8u);
  ExpectIdenticalRuns(single, pooled);
}

/// The real catalogue: full simulator scenarios (beds, networks, oracles —
/// including the churn scenarios, whose trials additionally own FaultPlan /
/// ChurnEngine / tree-repair state) run quick through 1 and 8 workers must
/// agree bit-for-bit.
TEST(ExperimentEngineTest, RealScenariosDeterministicAcrossThreadCounts) {
  ScenarioRegistry registry;
  bench::RegisterAllScenarios(registry);
  for (const char* name : {"msgs_vs_k", "churn_lifetime", "churn_accuracy", "repair_cost"}) {
    SCOPED_TRACE(name);
    const Scenario* scenario = registry.Find(name);
    ASSERT_NE(scenario, nullptr);

    ScenarioRun single = ExperimentEngine({.threads = 1, .quick = true}).Run(*scenario);
    ScenarioRun pooled = ExperimentEngine({.threads = 8, .quick = true}).Run(*scenario);
    EXPECT_TRUE(single.AllOk());
    ExpectIdenticalRuns(single, pooled);
  }
}

/// E13's headline claim: under an identical FaultPlan, MINT's first battery
/// death comes later than TAG's.
TEST(ExperimentEngineTest, ChurnLifetimeShowsMintOutlivingTag) {
  ScenarioRegistry registry;
  bench::RegisterAllScenarios(registry);
  const Scenario* scenario = registry.Find("churn_lifetime");
  ASSERT_NE(scenario, nullptr);
  ScenarioRun run = ExperimentEngine({.threads = 4, .quick = true}).Run(*scenario);
  ASSERT_TRUE(run.AllOk());
  double tag_death = 0, mint_death = 0;
  for (const TrialResult& t : run.trials) {
    for (const auto& [metric, value] : t.metrics) {
      if (metric != "first_battery_death_epoch") continue;
      if (t.spec.algorithm == "TAG") tag_death = value;
      if (t.spec.algorithm == "MINT") mint_death = value;
    }
  }
  EXPECT_GT(tag_death, 0.0);
  EXPECT_GT(mint_death, tag_death);
}

TEST(ExperimentEngineTest, SeedOverrideReachesTrials) {
  ExperimentEngine engine({.threads = 2, .seed = 424242});
  ScenarioRun run = engine.Run(ToyScenario(3));
  for (const TrialResult& t : run.trials) EXPECT_EQ(t.spec.seed, 424242u);
}

TEST(ExperimentEngineTest, ZeroThreadsMeansHardwareConcurrency) {
  ExperimentEngine engine({.threads = 0});
  EXPECT_GE(engine.options().threads, 1u);
}

// ------------------------------------------------------------------ report

/// Regression: `kspot_bench --json-dir some/new/dir` (and any caller passing
/// a nested path) must not lose a finished sweep to a missing directory —
/// WriteJsonFile creates missing parents itself.
TEST(ReportTest, WriteJsonFileCreatesMissingParentDirectories) {
  ExperimentEngine engine({.threads = 1});
  ScenarioRun run = engine.Run(ToyScenario(2));

  std::filesystem::path root =
      std::filesystem::path(::testing::TempDir()) / "kspot_report_test";
  std::filesystem::remove_all(root);
  std::filesystem::path target = root / "nested" / "deeper" / "BENCH_toy.json";
  ASSERT_FALSE(std::filesystem::exists(target.parent_path()));

  util::Status status = WriteJsonFile(run, target.string());
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_TRUE(std::filesystem::exists(target));

  // The file holds the same JSON the in-memory writer produces.
  std::ifstream in(target);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, ToJsonString(run));

  // A bare filename (no parent component) still works.
  std::filesystem::path flat = root / "flat.json";
  std::filesystem::create_directories(root);
  auto cwd = std::filesystem::current_path();
  std::filesystem::current_path(root);
  EXPECT_TRUE(WriteJsonFile(run, "flat.json").ok());
  std::filesystem::current_path(cwd);
  EXPECT_TRUE(std::filesystem::exists(flat));

  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace kspot::runner
