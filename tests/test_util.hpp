#pragma once

#include <memory>

#include "core/oracle.hpp"
#include "core/query_spec.hpp"
#include "data/generators.hpp"
#include "sim/network.hpp"
#include "sim/routing_tree.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace kspot::testing {

/// A ready-to-run simulated deployment: topology + tree + network, with the
/// lifetime plumbing tests shouldn't have to repeat.
struct TestBed {
  sim::Topology topology;
  sim::RoutingTree tree;
  std::unique_ptr<sim::Network> net;

  static TestBed Grid(size_t nodes, size_t rooms, uint64_t seed,
                      sim::NetworkOptions net_options = {}) {
    TestBed bed;
    sim::TopologyOptions topt;
    topt.num_nodes = nodes;
    topt.num_rooms = rooms;
    bed.topology = sim::MakeGrid(topt);
    util::Rng rng(seed);
    bed.tree = sim::RoutingTree::BuildFirstHeard(bed.topology, rng);
    bed.net = std::make_unique<sim::Network>(&bed.topology, &bed.tree, net_options,
                                             util::Rng(seed ^ 0xBEEF));
    return bed;
  }

  static TestBed Clustered(size_t nodes, size_t rooms, uint64_t seed,
                           sim::NetworkOptions net_options = {}) {
    TestBed bed;
    sim::TopologyOptions topt;
    topt.num_nodes = nodes;
    topt.num_rooms = rooms;
    util::Rng topo_rng(seed);
    bed.topology = sim::MakeClusteredRooms(topt, topo_rng);
    util::Rng rng(seed ^ 0x1234);
    // Clustered deployments use the cluster-aware tree the KSpot server
    // builds from the Configuration Panel's region assignments.
    bed.tree = sim::RoutingTree::BuildClusterAware(bed.topology, rng);
    bed.net = std::make_unique<sim::Network>(&bed.topology, &bed.tree, net_options,
                                             util::Rng(seed ^ 0xBEEF));
    return bed;
  }

  static TestBed Figure1(sim::NetworkOptions net_options = {}) {
    TestBed bed;
    bed.topology = sim::MakeFigure1();
    bed.tree = sim::RoutingTree::FromParents(sim::MakeFigure1Parents());
    bed.net = std::make_unique<sim::Network>(&bed.topology, &bed.tree, net_options,
                                             util::Rng(42));
    return bed;
  }
};

}  // namespace kspot::testing
