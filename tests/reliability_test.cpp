/// Tests for the end-to-end reliability layer: LinkLossProb clamping under
/// compounded episodes, the adaptive retry/backoff unicast core (EWMA
/// estimator, retry budgets, backoff charged as idle listening), epoch
/// deadlines with graceful degradation, completeness accounting
/// (TopKResult::completeness conservation across shard/thread counts), and
/// the fault side's blackout / burst-loss episodes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/tag.hpp"
#include "fault/churn_engine.hpp"
#include "fault/fault_plan.hpp"
#include "sim/network.hpp"

namespace kspot {
namespace {

using sim::kSinkId;
using sim::NodeId;

// ------------------------------------------------ LinkLossProb clamping

TEST(LinkLossTest, ExtremeEdgeLossClampsToOne) {
  sim::NetworkOptions opt;
  opt.loss_prob = 0.1;
  opt.edge_max_loss = 3.0;  // misconfigured: would push p to 2.8 unclamped
  opt.edge_onset = 0.5;
  bench::Bed bed = bench::Bed::Grid(49, 8, 11, opt);
  // A pair well beyond the communication range maxes out the gray zone.
  NodeId far_a = 1;
  auto far_b = static_cast<NodeId>(bed.topology.num_nodes() - 1);
  EXPECT_EQ(bed.net->LinkLossProb(far_a, far_b), 1.0);
  // Every real tree link stays a probability.
  for (NodeId v = 1; v < bed.topology.num_nodes(); ++v) {
    double p = bed.net->LinkLossProb(v, bed.tree.parent(v));
    EXPECT_GE(p, 0.0) << v;
    EXPECT_LE(p, 1.0) << v;
  }
}

TEST(LinkLossTest, EpisodeLossNearOneCompoundsWithinBounds) {
  // Regression for the compounding formula near extra_loss = 1.0: two
  // endpoints at 0.99 over a lossy baseline must stay <= 1, and an exact
  // 1.0 episode (a blackout) pins the link at exactly 1.0.
  bench::Bed bed = bench::Bed::Grid(9, 4, 5);
  NodeId leaf = bed.tree.post_order().front();
  NodeId parent = bed.tree.parent(leaf);
  bed.net->SetNodeExtraLoss(leaf, 0.99);
  bed.net->SetNodeExtraLoss(parent, 0.99);
  double p = bed.net->LinkLossProb(leaf, parent);
  EXPECT_GE(p, 0.99);
  EXPECT_LE(p, 1.0);
  bed.net->SetNodeExtraLoss(leaf, 1.0);
  EXPECT_EQ(bed.net->LinkLossProb(leaf, parent), 1.0);
  bed.net->SetNodeExtraLoss(leaf, 0.0);
  bed.net->SetNodeExtraLoss(parent, 0.0);
  EXPECT_EQ(bed.net->LinkLossProb(leaf, parent), bed.net->options().loss_prob);
}

// ------------------------------------------------------ adaptive retries

/// Everything observable about a finished reliability run, for exact
/// comparison across shard/thread configurations.
struct RelSummary {
  std::vector<std::string> answers;
  std::vector<double> completeness;
  std::vector<uint32_t> contributors;
  uint64_t messages = 0;
  uint64_t retries = 0;
  uint64_t backoff_us = 0;
  sim::TimeUs now = 0;

  bool operator==(const RelSummary& o) const {
    return answers == o.answers && completeness == o.completeness &&
           contributors == o.contributors && messages == o.messages &&
           retries == o.retries && backoff_us == o.backoff_us && now == o.now;
  }
};

/// TAG for `epochs` epochs with per-epoch reliability contracts, the way the
/// coordinator drives it.
RelSummary RunTag(bench::Bed& bed, size_t epochs) {
  auto gen = bed.RoomData(17);
  core::TagTopK tag(bed.net.get(), gen.get(), bench::RoomAvgSpec(3));
  RelSummary s;
  for (size_t e = 0; e < epochs; ++e) {
    bed.net->BeginReliabilityEpoch();
    core::TopKResult result = tag.RunEpoch(static_cast<sim::Epoch>(e));
    s.answers.push_back(result.ToString());
    s.completeness.push_back(result.completeness);
    s.contributors.push_back(result.contributors);
  }
  s.messages = bed.net->total().messages;
  s.retries = bed.net->total().retries;
  s.backoff_us = bed.net->total().backoff_us;
  s.now = bed.net->events().now();
  return s;
}

TEST(ReliabilityTest, OffModeKeepsRetryCountersZero) {
  sim::NetworkOptions opt;
  opt.loss_prob = 0.3;  // lossy, but the layer is off: no ARQ, no backoff
  bench::Bed bed = bench::Bed::Clustered(49, 12, 23, opt);
  RelSummary s = RunTag(bed, 10);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.backoff_us, 0u);
  // Completeness accounting is free: lossy answers advertise their thinning
  // even with the layer off, but nothing is marked structurally degraded.
  for (double c : s.completeness) EXPECT_LE(c, 1.0);
  EXPECT_FALSE(bed.net->EpochDegraded());
}

TEST(ReliabilityTest, AdaptiveRetriesRecoverCompleteness) {
  sim::NetworkOptions off_opt;
  off_opt.loss_prob = 0.3;
  bench::Bed off_bed = bench::Bed::Clustered(49, 12, 23, off_opt);
  RelSummary off = RunTag(off_bed, 20);

  sim::NetworkOptions on_opt = off_opt;
  on_opt.reliability.enabled = true;
  on_opt.reliability.max_retries = 6;
  on_opt.reliability.residual_target = 0.01;
  bench::Bed on_bed = bench::Bed::Clustered(49, 12, 23, on_opt);
  RelSummary on = RunTag(on_bed, 20);

  EXPECT_GT(on.retries, 0u);
  EXPECT_GT(on.backoff_us, 0u);
  double off_mean = 0.0, on_mean = 0.0;
  for (double c : off.completeness) off_mean += c;
  for (double c : on.completeness) on_mean += c;
  off_mean /= static_cast<double>(off.completeness.size());
  on_mean /= static_cast<double>(on.completeness.size());
  EXPECT_GT(on_mean, off_mean) << "retries bought nothing";
  EXPECT_GT(on_mean, 0.9);
}

TEST(ReliabilityTest, RetryBudgetBoundsPerEpochSpend) {
  sim::NetworkOptions opt;
  opt.loss_prob = 0.5;
  opt.reliability.enabled = true;
  opt.reliability.max_retries = 6;
  opt.reliability.residual_target = 0.01;
  opt.reliability.retry_budget = 1;
  bench::Bed bed = bench::Bed::Clustered(49, 12, 29, opt);
  auto gen = bed.RoomData(17);
  core::TagTopK tag(bed.net.get(), gen.get(), bench::RoomAvgSpec(3));
  size_t n = bed.topology.num_nodes();
  uint64_t budget_total = 0;
  for (size_t e = 0; e < 10; ++e) {
    bed.net->BeginReliabilityEpoch();
    uint64_t before = bed.net->total().retries;
    tag.RunEpoch(static_cast<sim::Epoch>(e));
    uint64_t spent = bed.net->total().retries - before;
    // Each node may spend at most its budget of 1 per epoch.
    EXPECT_LE(spent, n) << "epoch " << e;
    budget_total += spent;
  }

  // The same deployment with an ample budget retries strictly more.
  sim::NetworkOptions wide = opt;
  wide.reliability.retry_budget = 0;  // unlimited
  bench::Bed wide_bed = bench::Bed::Clustered(49, 12, 29, wide);
  RelSummary unlimited = RunTag(wide_bed, 10);
  EXPECT_GT(unlimited.retries, budget_total);
}

// --------------------------------------------------------- epoch deadlines

size_t MaxTreeDepth(const sim::RoutingTree& tree) {
  size_t max_depth = 0;
  for (NodeId v : tree.wave_order()) {
    max_depth = std::max(max_depth, static_cast<size_t>(tree.depth(v)));
  }
  return max_depth;
}

TEST(ReliabilityTest, WaveDeadlineTruncatesAndMarksDegraded) {
  sim::NetworkOptions opt;
  opt.reliability.enabled = true;
  opt.reliability.wave_depth_budget = 1;  // only depth-1 nodes make the cut
  bench::Bed bed = bench::Bed::Grid(100, 12, 41, opt);
  ASSERT_GE(MaxTreeDepth(bed.tree), 2u) << "bed too shallow to truncate";
  RelSummary s = RunTag(bed, 5);
  EXPECT_TRUE(bed.net->EpochDegraded());
  EXPECT_GT(bed.net->TruncatedNodes(), 0u);
  for (double c : s.completeness) EXPECT_LT(c, 1.0);
  for (uint32_t c : s.contributors) {
    EXPECT_LT(c, bed.net->AliveAttachedSensors());
  }
}

TEST(ReliabilityTest, GenerousDeadlineIsBitInert) {
  // A deadline deeper than the tree cuts nobody: the run must be
  // bit-identical to the same deployment with no deadline at all.
  auto run = [](int budget) {
    sim::NetworkOptions opt;
    opt.reliability.enabled = true;
    opt.reliability.wave_depth_budget = budget;
    bench::Bed bed = bench::Bed::Grid(100, 12, 41, opt);
    RelSummary s = RunTag(bed, 8);
    EXPECT_FALSE(bed.net->EpochDegraded()) << "budget " << budget;
    return s;
  };
  sim::NetworkOptions probe_opt;
  bench::Bed probe = bench::Bed::Grid(100, 12, 41, probe_opt);
  int deep = static_cast<int>(MaxTreeDepth(probe.tree));
  EXPECT_TRUE(run(0) == run(deep));
  EXPECT_TRUE(run(0) == run(deep + 7));
}

// --------------------------------------- completeness conservation (shards)

RelSummary RunShardedTag(double loss, size_t shards, size_t threads) {
  sim::NetworkOptions opt;
  opt.loss_prob = loss;
  opt.reliability.enabled = true;
  opt.reliability.max_retries = 4;
  bench::Bed bed = bench::Bed::Grid(150, 10, 77, opt);
  bed.EnableSharding(shards, threads);
  return RunTag(bed, 12);
}

TEST(ReliabilityTest, LosslessCompletenessConservedAcrossShardCounts) {
  RelSummary serial = RunShardedTag(0.0, 1, 1);
  for (double c : serial.completeness) EXPECT_EQ(c, 1.0);
  // Every sensor contributed: the completeness denominator conserves.
  sim::NetworkOptions probe_opt;
  bench::Bed probe = bench::Bed::Grid(150, 10, 77, probe_opt);
  for (uint32_t c : serial.contributors) {
    EXPECT_EQ(c, probe.net->AliveAttachedSensors());
  }
  for (size_t shards : {size_t{2}, size_t{8}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " threads=" + std::to_string(threads));
      EXPECT_TRUE(serial == RunShardedTag(0.0, shards, threads));
    }
  }
}

TEST(ReliabilityTest, LossyRunsInvariantAcrossShardAndThreadCounts) {
  // Under loss the sharded path draws from per-node substreams (not the
  // serial global stream), so sharded is compared against sharded: the
  // answer, completeness and retry ledgers must not depend on the lane
  // layout or the thread count.
  RelSummary base = RunShardedTag(0.2, 2, 1);
  EXPECT_GT(base.retries, 0u);
  for (size_t shards : {size_t{2}, size_t{8}}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      if (shards == 2 && threads == 1) continue;
      SCOPED_TRACE("shards=" + std::to_string(shards) + " threads=" + std::to_string(threads));
      EXPECT_TRUE(base == RunShardedTag(0.2, shards, threads));
    }
  }
}

// ------------------------------------------------- blackout / burst faults

TEST(ChurnEpisodeTest, BlackoutAndBurstCompoundAndRestore) {
  bench::Bed bed = bench::Bed::Grid(25, 4, 21);
  fault::FaultPlan plan;
  plan.seed = 21;
  using Kind = fault::FaultEvent::Kind;
  plan.events = {{1, Kind::kDegradeStart, 3, 0.3}, {2, Kind::kBurstStart, 3, 0.5},
                 {3, Kind::kBlackoutStart, 3, 1.0}, {4, Kind::kBlackoutEnd, 3, 0.0},
                 {5, Kind::kBurstEnd, 3, 0.0},      {6, Kind::kDegradeEnd, 3, 0.0}};
  fault::ChurnEngine churn(bed.net.get(), &bed.tree, plan);

  churn.BeginEpoch(0);
  EXPECT_EQ(bed.net->NodeExtraLoss(3), 0.0);

  fault::ChurnReport r1 = churn.BeginEpoch(1);
  EXPECT_EQ(r1.degrade_changes, 1u);
  // A single episode passes its loss through bit-exactly (no compounding
  // arithmetic may touch it — 1-(1-x) != x in doubles).
  EXPECT_DOUBLE_EQ(bed.net->NodeExtraLoss(3), 0.3);

  fault::ChurnReport r2 = churn.BeginEpoch(2);
  EXPECT_EQ(r2.burst_changes, 1u);
  EXPECT_NEAR(bed.net->NodeExtraLoss(3), 0.65, 1e-12);  // 1-(1-0.3)(1-0.5)

  fault::ChurnReport r3 = churn.BeginEpoch(3);
  EXPECT_EQ(r3.blackout_changes, 1u);
  EXPECT_EQ(bed.net->NodeExtraLoss(3), 1.0);  // blackout dominates outright

  // Ends restore the still-running episodes, not a clean slate.
  churn.BeginEpoch(4);
  EXPECT_NEAR(bed.net->NodeExtraLoss(3), 0.65, 1e-12);
  churn.BeginEpoch(5);
  EXPECT_DOUBLE_EQ(bed.net->NodeExtraLoss(3), 0.3);
  churn.BeginEpoch(6);
  EXPECT_EQ(bed.net->NodeExtraLoss(3), 0.0);
}

TEST(FaultPlanEpisodeTest, GeneratesPairedBlackoutAndBurstEvents) {
  sim::TopologyOptions topt;
  topt.num_nodes = 49;
  topt.num_rooms = 8;
  sim::Topology topology = sim::MakeGrid(topt);
  fault::FaultPlanOptions opt;
  opt.horizon = 300;
  opt.blackout_prob = 0.01;
  opt.blackout_duration = 3;
  opt.burst_prob = 0.01;
  opt.burst_extra_loss = 0.6;
  opt.burst_duration = 5;
  fault::FaultPlan plan = fault::FaultPlan::Generate(topology, opt, 13);
  using Kind = fault::FaultEvent::Kind;
  EXPECT_GT(plan.CountKind(Kind::kBlackoutStart), 0u);
  EXPECT_GT(plan.CountKind(Kind::kBurstStart), 0u);
  // Starts and ends alternate per node; losses carry the configured values.
  std::vector<int> blackout_on(topology.num_nodes(), 0);
  std::vector<int> burst_on(topology.num_nodes(), 0);
  for (const fault::FaultEvent& ev : plan.events) {
    EXPECT_NE(ev.node, kSinkId);
    EXPECT_GE(ev.at, 1u);
    EXPECT_LT(ev.at, opt.horizon);
    switch (ev.kind) {
      case Kind::kBlackoutStart:
        EXPECT_EQ(blackout_on[ev.node], 0) << "double blackout on " << ev.node;
        EXPECT_DOUBLE_EQ(ev.extra_loss, 1.0);
        blackout_on[ev.node] = 1;
        break;
      case Kind::kBlackoutEnd:
        EXPECT_EQ(blackout_on[ev.node], 1) << "end without start on " << ev.node;
        blackout_on[ev.node] = 0;
        break;
      case Kind::kBurstStart:
        EXPECT_EQ(burst_on[ev.node], 0) << "double burst on " << ev.node;
        EXPECT_DOUBLE_EQ(ev.extra_loss, opt.burst_extra_loss);
        burst_on[ev.node] = 1;
        break;
      case Kind::kBurstEnd:
        EXPECT_EQ(burst_on[ev.node], 1) << "end without start on " << ev.node;
        burst_on[ev.node] = 0;
        break;
      default:
        break;
    }
  }
  // Determinism holds for the new event kinds too.
  fault::FaultPlan again = fault::FaultPlan::Generate(topology, opt, 13);
  ASSERT_EQ(plan.events.size(), again.events.size());
  for (size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(plan.events[i].at, again.events[i].at);
    EXPECT_EQ(plan.events[i].kind, again.events[i].kind);
    EXPECT_EQ(plan.events[i].node, again.events[i].node);
  }
}

TEST(FaultPlanEpisodeTest, ZeroProbabilitiesProduceNoEpisodeEvents) {
  sim::TopologyOptions topt;
  topt.num_nodes = 49;
  topt.num_rooms = 8;
  sim::Topology topology = sim::MakeGrid(topt);
  fault::FaultPlanOptions opt;
  opt.horizon = 200;
  opt.crash_prob = 0.01;
  opt.mean_downtime = 10;
  fault::FaultPlan plan = fault::FaultPlan::Generate(topology, opt, 7);
  using Kind = fault::FaultEvent::Kind;
  EXPECT_EQ(plan.CountKind(Kind::kBlackoutStart), 0u);
  EXPECT_EQ(plan.CountKind(Kind::kBlackoutEnd), 0u);
  EXPECT_EQ(plan.CountKind(Kind::kBurstStart), 0u);
  EXPECT_EQ(plan.CountKind(Kind::kBurstEnd), 0u);
}

}  // namespace
}  // namespace kspot
