#include <gtest/gtest.h>

#include <algorithm>

#include "agg/aggregate.hpp"
#include "agg/group_view.hpp"
#include "net/serializer.hpp"
#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace kspot::agg {
namespace {

TEST(AggKindTest, NamesAndParsing) {
  EXPECT_EQ(AggKindName(AggKind::kAvg), "AVG");
  AggKind k;
  EXPECT_TRUE(ParseAggKind("average", &k));
  EXPECT_EQ(k, AggKind::kAvg);
  EXPECT_TRUE(ParseAggKind("MiN", &k));
  EXPECT_EQ(k, AggKind::kMin);
  EXPECT_FALSE(ParseAggKind("median", &k));
}

TEST(PartialAggTest, SingleValueFinals) {
  PartialAgg p = PartialAgg::FromValue(75.5);
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kAvg), 75.5);
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kSum), 75.5);
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kMin), 75.5);
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kMax), 75.5);
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kCount), 1.0);
}

TEST(PartialAggTest, MergeComputesAllAggregates) {
  PartialAgg p;
  for (double v : {40.0, 74.0, 39.0}) p.Merge(PartialAgg::FromValue(v));
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kAvg), 51.0);
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kSum), 153.0);
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kMin), 39.0);
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kMax), 74.0);
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kCount), 3.0);
}

TEST(PartialAggTest, MergeOrderInvariant) {
  // Any merge tree over the same multiset must produce identical partials —
  // the property that makes in-network aggregation exact.
  util::Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) {
    values.push_back(util::fixed_point::Quantize(rng.NextDouble(0, 100)));
  }
  PartialAgg sequential;
  for (double v : values) sequential.Merge(PartialAgg::FromValue(v));
  for (int trial = 0; trial < 10; ++trial) {
    auto shuffled = values;
    rng.Shuffle(shuffled);
    // Random binary merge tree: fold pairs.
    std::vector<PartialAgg> parts;
    for (double v : shuffled) parts.push_back(PartialAgg::FromValue(v));
    while (parts.size() > 1) {
      size_t i = rng.NextBounded(parts.size() - 1);
      parts[i].Merge(parts[i + 1]);
      parts.erase(parts.begin() + static_cast<long>(i) + 1);
    }
    EXPECT_EQ(parts[0].sum_fx, sequential.sum_fx);
    EXPECT_EQ(parts[0].count, sequential.count);
    EXPECT_EQ(parts[0].min_fx, sequential.min_fx);
    EXPECT_EQ(parts[0].max_fx, sequential.max_fx);
  }
}

TEST(PartialAggTest, EmptyMergeIsIdentity) {
  PartialAgg p = PartialAgg::FromValue(5);
  PartialAgg empty;
  p.Merge(empty);
  EXPECT_DOUBLE_EQ(p.Final(AggKind::kSum), 5.0);
  empty.Merge(p);
  EXPECT_DOUBLE_EQ(empty.Final(AggKind::kSum), 5.0);
}

TEST(GroupViewTest, AddAndRank) {
  GroupView v;
  v.AddReading(0, 74.0);   // A
  v.AddReading(0, 75.0);
  v.AddReading(2, 75.0);   // C
  v.AddReading(2, 75.0);
  v.AddReading(1, 41.0);   // B
  auto ranked = v.Ranked(AggKind::kAvg);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].group, 2);  // C: 75
  EXPECT_EQ(ranked[1].group, 0);  // A: 74.5
  EXPECT_EQ(ranked[2].group, 1);  // B: 41
}

TEST(GroupViewTest, TiesBreakByGroupId) {
  GroupView v;
  v.AddReading(5, 50.0);
  v.AddReading(3, 50.0);
  auto ranked = v.Ranked(AggKind::kAvg);
  EXPECT_EQ(ranked[0].group, 3);
  EXPECT_EQ(ranked[1].group, 5);
}

TEST(GroupViewTest, TopKTruncates) {
  GroupView v;
  for (int g = 0; g < 10; ++g) v.AddReading(g, g * 10.0);
  auto top3 = v.TopK(AggKind::kMax, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].group, 9);
  EXPECT_EQ(top3[2].group, 7);
}

TEST(GroupViewTest, MergeViewAccumulates) {
  GroupView a, b;
  a.AddReading(1, 10.0);
  b.AddReading(1, 30.0);
  b.AddReading(2, 99.0);
  a.MergeView(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.Get(1).Final(AggKind::kAvg), 20.0);
  EXPECT_DOUBLE_EQ(a.Get(2).Final(AggKind::kAvg), 99.0);
}

TEST(GroupViewTest, PruneToLocalTopKReproducesWrongfulCut) {
  // Section III-A: s4 holds (B,41 avg of 40,42) and (D,39); naive top-1 cuts D.
  GroupView v;
  v.AddReading(1, 40.0);
  v.AddReading(1, 42.0);
  v.AddReading(3, 39.0);
  v.PruneToLocalTopK(AggKind::kAvg, 1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_TRUE(v.Contains(1));
  EXPECT_FALSE(v.Contains(3));
}

TEST(GroupViewTest, EraseAndContains) {
  GroupView v;
  v.AddReading(7, 1.0);
  EXPECT_TRUE(v.Contains(7));
  v.Erase(7);
  EXPECT_FALSE(v.Contains(7));
  EXPECT_TRUE(v.empty());
}

// ------------------------------------------------- flat-map representation

TEST(GroupViewTest, EntriesStaySortedUnderRandomOps) {
  util::Rng rng(29);
  GroupView v;
  for (int i = 0; i < 500; ++i) {
    auto g = static_cast<sim::GroupId>(rng.NextBounded(40));
    switch (rng.NextBounded(3)) {
      case 0: v.AddReading(g, static_cast<double>(rng.NextBounded(100))); break;
      case 1: v.Set(g, PartialAgg::FromValue(5.0)); break;
      default: v.Erase(g); break;
    }
    for (size_t e = 1; e < v.entries().size(); ++e) {
      ASSERT_LT(v.entries()[e - 1].first, v.entries()[e].first);
    }
  }
}

TEST(GroupViewTest, SetOverwritesWhereMergeAccumulates) {
  GroupView v;
  v.AddReading(4, 10.0);
  v.MergePartial(4, PartialAgg::FromValue(20.0));
  EXPECT_DOUBLE_EQ(v.Get(4).Final(AggKind::kSum), 30.0);
  v.Set(4, PartialAgg::FromValue(7.0));
  EXPECT_DOUBLE_EQ(v.Get(4).Final(AggKind::kSum), 7.0);
  v.Set(9, PartialAgg::FromValue(1.0));  // insert via Set
  EXPECT_TRUE(v.Contains(9));
}

TEST(GroupViewTest, FindReturnsNullWhenAbsent) {
  GroupView v;
  v.AddReading(2, 1.0);
  EXPECT_NE(v.Find(2), nullptr);
  EXPECT_EQ(v.Find(1), nullptr);
  EXPECT_EQ(v.Find(3), nullptr);
}

TEST(GroupViewTest, MergeDisjointAndOverlappingViews) {
  GroupView lo, hi, mixed;
  for (sim::GroupId g : {1, 3, 5}) lo.AddReading(g, 10.0);
  for (sim::GroupId g : {7, 8, 9}) hi.AddReading(g, 20.0);
  for (sim::GroupId g : {3, 7, 12}) mixed.AddReading(g, 5.0);
  GroupView merged = lo;
  merged.MergeView(hi);  // disjoint fast path (append)
  ASSERT_EQ(merged.size(), 6u);
  merged.MergeView(mixed);  // interleaved two-pointer path
  ASSERT_EQ(merged.size(), 7u);
  EXPECT_DOUBLE_EQ(merged.Get(3).Final(AggKind::kSum), 15.0);
  EXPECT_DOUBLE_EQ(merged.Get(7).Final(AggKind::kSum), 25.0);
  EXPECT_DOUBLE_EQ(merged.Get(12).Final(AggKind::kSum), 5.0);
  for (size_t e = 1; e < merged.entries().size(); ++e) {
    EXPECT_LT(merged.entries()[e - 1].first, merged.entries()[e].first);
  }
}

TEST(GroupViewTest, MergeEmptyViewsAndMoveSteal) {
  GroupView empty, full;
  full.AddReading(1, 4.0);
  GroupView target;
  target.MergeView(empty);  // empty into empty
  EXPECT_TRUE(target.empty());
  target.MergeView(full);  // copy into empty
  EXPECT_EQ(target.size(), 1u);
  target.MergeView(empty);  // empty into non-empty: no-op
  EXPECT_EQ(target.size(), 1u);
  GroupView stolen;
  stolen.MergeView(std::move(full));  // move into empty steals storage
  EXPECT_EQ(stolen.size(), 1u);
  EXPECT_DOUBLE_EQ(stolen.Get(1).Final(AggKind::kAvg), 4.0);
}

TEST(GroupViewTest, EraseDuringPruneKeepsExactSurvivors) {
  // The MINT pruning pattern: enumerate entries, collect victims, erase —
  // erasure must not disturb the survivors or the sorted order, including
  // when the victim set interleaves with the keep set.
  GroupView v;
  for (int g = 0; g < 20; ++g) v.AddReading(g, g % 2 == 0 ? 90.0 : 10.0);
  std::vector<sim::GroupId> victims;
  for (const auto& [g, partial] : v.entries()) {
    if (partial.Final(AggKind::kAvg) < 50.0) victims.push_back(g);
  }
  for (sim::GroupId g : victims) v.Erase(g);
  ASSERT_EQ(v.size(), 10u);
  for (const auto& [g, partial] : v.entries()) {
    EXPECT_EQ(g % 2, 0) << "odd group survived the prune";
    EXPECT_DOUBLE_EQ(partial.Final(AggKind::kAvg), 90.0);
  }
  v.PruneToLocalTopK(AggKind::kAvg, 3);  // ties on value: lowest group ids win
  ASSERT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.Contains(0));
  EXPECT_TRUE(v.Contains(2));
  EXPECT_TRUE(v.Contains(4));
}

TEST(GroupViewTest, TopKMatchesFullSortPrefix) {
  util::Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    GroupView v;
    size_t groups = 1 + rng.NextBounded(50);
    for (size_t g = 0; g < groups; ++g) {
      v.AddReading(static_cast<sim::GroupId>(g),
                   static_cast<double>(rng.NextBounded(10)));  // force value ties
    }
    auto ranked = v.Ranked(AggKind::kAvg);
    for (size_t k : {size_t{1}, size_t{3}, groups, groups + 5}) {
      auto top = v.TopK(AggKind::kAvg, k);
      std::vector<RankedItem> want(ranked.begin(),
                                   ranked.begin() + static_cast<long>(std::min(k, ranked.size())));
      EXPECT_EQ(top, want) << "k=" << k << " groups=" << groups;
    }
  }
}

class CodecTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(CodecTest, RoundTripPreservesFinals) {
  AggKind kind = GetParam();
  GroupView v;
  util::Rng rng(11);
  for (int g = 0; g < 20; ++g) {
    int readings = 1 + static_cast<int>(rng.NextBounded(5));
    for (int i = 0; i < readings; ++i) {
      v.AddReading(g, util::fixed_point::Quantize(rng.NextDouble(0, 100)));
    }
  }
  net::Writer w;
  codec::WriteView(w, kind, v);
  EXPECT_EQ(w.size(), codec::ViewWireBytes(kind, v.size()));
  net::Reader r(w.bytes());
  GroupView parsed;
  ASSERT_TRUE(codec::ReadView(r, kind, &parsed));
  ASSERT_EQ(parsed.size(), v.size());
  for (const auto& [g, partial] : v.entries()) {
    EXPECT_DOUBLE_EQ(parsed.Get(g).Final(kind), partial.Final(kind))
        << "group " << g << " kind " << AggKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CodecTest,
                         ::testing::Values(AggKind::kAvg, AggKind::kSum, AggKind::kMin,
                                           AggKind::kMax, AggKind::kCount),
                         [](const ::testing::TestParamInfo<AggKind>& info) {
                           return AggKindName(info.param);
                         });

TEST(CodecTest, ReadRejectsTruncated) {
  GroupView v;
  v.AddReading(1, 5.0);
  net::Writer w;
  codec::WriteView(w, AggKind::kAvg, v);
  auto bytes = w.bytes();
  bytes.pop_back();
  net::Reader r(bytes.data(), bytes.size());
  GroupView parsed;
  EXPECT_FALSE(codec::ReadView(r, AggKind::kAvg, &parsed));
}

TEST(CodecTest, MaxEntriesAreSmallest) {
  EXPECT_LT(codec::ViewWireBytes(AggKind::kMax, 10), codec::ViewWireBytes(AggKind::kAvg, 10));
  EXPECT_LT(codec::ViewWireBytes(AggKind::kCount, 10), codec::ViewWireBytes(AggKind::kMax, 10));
}

}  // namespace
}  // namespace kspot::agg
