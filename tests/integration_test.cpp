#include <gtest/gtest.h>

#include "core/mint.hpp"
#include "core/oracle.hpp"
#include "core/tja.hpp"
#include "kspot/display_panel.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"
#include "storage/history_store.hpp"
#include "test_util.hpp"

namespace kspot {
namespace {

// End-to-end: scenario file on disk -> server -> SQL -> ranked answers with
// savings, exercising the full stack the way the demo would.
TEST(IntegrationTest, ScenarioFileToRankedAnswers) {
  system::Scenario scenario = system::Scenario::ConferenceFloor(6, 4, 21);
  std::string path = ::testing::TempDir() + "/kspot_integration.kcfg";
  ASSERT_TRUE(scenario.Save(path));
  auto loaded = system::Scenario::Load(path);
  ASSERT_TRUE(loaded.ok());

  system::KSpotServer::Options opt;
  // A continuous monitoring query: long enough that MINT's one-time creation
  // phase amortizes (the demo runs for the duration of the conference).
  opt.epochs = 60;
  opt.seed = 4242;
  system::KSpotServer server(loaded.value(), opt);

  system::DisplayPanel panel(&server.scenario());
  std::string last_frame;
  auto outcome = server.ExecuteStreaming(
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min",
      [&](const core::TopKResult& r, const system::SystemPanel& sys) {
        last_frame = panel.RenderFrame(r) + sys.Render();
      });
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_EQ(outcome.value().per_epoch.size(), 60u);
  EXPECT_NE(last_frame.find("KSpot Bullets"), std::string::npos);
  EXPECT_NE(last_frame.find("System Panel"), std::string::npos);
  EXPECT_GT(outcome.value().panel.ByteSavingsPercent(), 0.0);
}

// The MINT answer served through the full server stack must equal an oracle
// computed over an identically seeded generator.
TEST(IntegrationTest, ServerAnswersMatchOracle) {
  system::Scenario scenario = system::Scenario::ConferenceFloor(5, 4, 33);
  system::KSpotServer::Options opt;
  opt.epochs = 10;
  opt.seed = 777;
  system::KSpotServer server(scenario, opt);
  auto outcome =
      server.Execute("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid");
  ASSERT_TRUE(outcome.ok());

  // Rebuild the same generator the server used (default factory, same seed).
  sim::Topology topo = scenario.BuildTopology();
  std::vector<sim::GroupId> rooms;
  for (sim::NodeId id = 0; id < topo.num_nodes(); ++id) rooms.push_back(topo.room(id));
  data::RoomCorrelatedGenerator gen(rooms, scenario.modality, 100.0 * 0.02, 100.0 * 0.01,
                                    util::Rng(777), /*global_sigma=*/100.0 * 0.03,
                                    /*quantize_step=*/100.0 * 0.01);
  core::QuerySpec spec;
  spec.k = 2;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kRoom;
  spec.domain_max = 100.0;
  core::Oracle oracle(&topo, &gen, spec);
  for (sim::Epoch e = 0; e < 10; ++e) {
    EXPECT_TRUE(outcome.value().per_epoch[e].Matches(oracle.TopK(e))) << "epoch " << e;
  }
}

// Historic pipeline over genuinely stored windows: generator -> per-node
// HistoryStore (ring + flash archive) -> TJA == reference.
TEST(IntegrationTest, StoredWindowsFeedTja) {
  auto bed = kspot::testing::TestBed::Grid(16, 4, 909);
  data::RandomWalkGenerator gen(16, data::Modality::kTemperature, 0.5, util::Rng(13));
  std::vector<storage::HistoryStore> stores;
  for (int i = 0; i < 16; ++i) stores.emplace_back(24, /*archive_to_flash=*/true, -20.0, 60.0);
  for (sim::Epoch e = 0; e < 40; ++e) {  // longer than the window: archives spill to flash
    for (sim::NodeId id = 1; id < 16; ++id) {
      stores[id].Append(e, gen.Value(id, e));
    }
  }
  storage::StoreHistorySource source(&stores);
  EXPECT_EQ(source.window_size(), 24u);
  // Flash archiving actually happened on eviction.
  EXPECT_GT(stores[1].flash_writes() + stores[1].ArchivedTopK(1).size(), 0u);

  core::HistoricOptions opt;
  opt.k = 3;
  core::Tja tja(bed.net.get(), &source, opt);
  auto got = tja.Run();
  ASSERT_EQ(got.items.size(), 3u);

  agg::GroupView reference;
  for (sim::NodeId id = 1; id < 16; ++id) {
    auto w = source.MaterializeWindow(id);
    for (size_t t = 0; t < w.size(); ++t) {
      reference.AddReading(static_cast<sim::GroupId>(t), w[t]);
    }
  }
  auto want = reference.TopK(agg::AggKind::kAvg, 3);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got.items[i].group, want[i].group);
    EXPECT_NEAR(got.items[i].value, want[i].value, 1e-9);
  }
}

// The paper's full demo loop on the Figure-1 scenario through SQL, with the
// naive-vs-MINT anomaly visible end to end.
TEST(IntegrationTest, Figure1DemoThroughSql) {
  system::KSpotServer::Options opt;
  opt.epochs = 4;
  opt.seed = 1;
  opt.make_generator = [](const system::Scenario&, uint64_t) {
    return std::make_unique<data::ConstantGenerator>(sim::Figure1Readings());
  };
  system::KSpotServer server(system::Scenario::Figure1(), opt);
  auto outcome =
      server.Execute("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid "
                     "EPOCH DURATION 1 min");
  ASSERT_TRUE(outcome.ok());
  for (const auto& r : outcome.value().per_epoch) {
    ASSERT_EQ(r.items.size(), 1u);
    EXPECT_EQ(r.items[0].group, 2);                // room C, not the naive (D, 76.5)
    EXPECT_DOUBLE_EQ(r.items[0].value, 75.0);
  }
  EXPECT_GE(outcome.value().panel.MessageSavingsPercent(), 0.0);
}

}  // namespace
}  // namespace kspot
