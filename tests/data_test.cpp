#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.hpp"
#include "data/modality.hpp"
#include "data/windowed.hpp"
#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace kspot::data {
namespace {

constexpr size_t kNodes = 20;

template <typename Gen>
void ExpectDomainAndDeterminism(Gen& gen) {
  const ModalityInfo& info = gen.modality();
  for (sim::Epoch e = 0; e < 30; ++e) {
    for (sim::NodeId id = 1; id < kNodes; ++id) {
      double v1 = gen.Value(id, e);
      double v2 = gen.Value(id, e);  // repeat query of same epoch
      EXPECT_DOUBLE_EQ(v1, v2);
      EXPECT_GE(v1, info.min_value);
      EXPECT_LE(v1, info.max_value);
      // Values live on the fixed-point grid (source quantization).
      EXPECT_DOUBLE_EQ(v1, util::fixed_point::Quantize(v1));
    }
  }
}

TEST(ModalityTest, LookupAndParse) {
  const ModalityInfo& sound = GetModalityInfo(Modality::kSound);
  EXPECT_EQ(sound.name, "sound");
  EXPECT_DOUBLE_EQ(sound.max_value, 100.0);
  Modality m;
  EXPECT_TRUE(ParseModality("TEMPERATURE", &m));
  EXPECT_EQ(m, Modality::kTemperature);
  EXPECT_FALSE(ParseModality("flux", &m));
}

TEST(ConstantGeneratorTest, ReturnsFixedValues) {
  ConstantGenerator gen({0, 10, 20, 30}, Modality::kSound);
  EXPECT_DOUBLE_EQ(gen.Value(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(gen.Value(1, 99), 10.0);
  EXPECT_DOUBLE_EQ(gen.Value(3, 5), 30.0);
  EXPECT_DOUBLE_EQ(gen.Value(9, 0), 0.0);  // out of range -> 0
}

TEST(UniformGeneratorTest, DomainAndDeterminism) {
  UniformGenerator gen(kNodes, Modality::kSound, util::Rng(5));
  ExpectDomainAndDeterminism(gen);
}

TEST(UniformGeneratorTest, SameSeedSameSeries) {
  UniformGenerator a(kNodes, Modality::kLight, util::Rng(9));
  UniformGenerator b(kNodes, Modality::kLight, util::Rng(9));
  for (sim::Epoch e = 0; e < 10; ++e) {
    for (sim::NodeId id = 1; id < kNodes; ++id) {
      EXPECT_DOUBLE_EQ(a.Value(id, e), b.Value(id, e));
    }
  }
}

TEST(GaussianGeneratorTest, CentersOnMeans) {
  GaussianGenerator gen(kNodes, Modality::kSound, 1.0, util::Rng(7));
  ExpectDomainAndDeterminism(gen);
  // Averaged over epochs, node values should stay near their per-node mean:
  // variance of the mean of 200 samples with sigma=1 is tiny.
  double first_epoch = gen.Value(1, 0);
  double acc = 0;
  for (sim::Epoch e = 0; e < 200; ++e) acc += gen.Value(1, e);
  EXPECT_NEAR(acc / 200.0, first_epoch, 3.0);
}

TEST(RandomWalkGeneratorTest, StepsAreBounded) {
  RandomWalkGenerator gen(kNodes, Modality::kSound, 0.5, util::Rng(11));
  ExpectDomainAndDeterminism(gen);
}

TEST(RandomWalkGeneratorTest, VolatilityScalesWithSigma) {
  RandomWalkGenerator calm(kNodes, Modality::kSound, 0.1, util::Rng(13));
  RandomWalkGenerator wild(kNodes, Modality::kSound, 5.0, util::Rng(13));
  double calm_move = 0, wild_move = 0;
  double calm_prev = calm.Value(1, 0), wild_prev = wild.Value(1, 0);
  for (sim::Epoch e = 1; e < 100; ++e) {
    calm_move += std::abs(calm.Value(1, e) - calm_prev);
    wild_move += std::abs(wild.Value(1, e) - wild_prev);
    calm_prev = calm.Value(1, e);
    wild_prev = wild.Value(1, e);
  }
  EXPECT_LT(calm_move * 4, wild_move);
}

TEST(RoomCorrelatedGeneratorTest, NodesInSameRoomCorrelate) {
  // Rooms: nodes 1-5 in room 0, nodes 6-10 in room 1.
  std::vector<sim::GroupId> rooms(11, 0);
  for (sim::NodeId id = 6; id <= 10; ++id) rooms[id] = 1;
  RoomCorrelatedGenerator gen(rooms, Modality::kSound, 2.0, 0.5, util::Rng(17));
  ExpectDomainAndDeterminism(gen);
  // Same-room spread should be much smaller than the room separation on
  // average (not guaranteed per epoch; average over many).
  double within = 0, across = 0;
  for (sim::Epoch e = 0; e < 100; ++e) {
    within += std::abs(gen.Value(1, e) - gen.Value(2, e));
    across += std::abs(gen.Value(1, e) - gen.Value(6, e));
  }
  EXPECT_LT(within, across);
}

TEST(SpikeGeneratorTest, SpikesAppearAtRoughlyTheConfiguredRate) {
  SpikeGenerator gen(kNodes, Modality::kSound, 20.0, 0.05, util::Rng(19));
  ExpectDomainAndDeterminism(gen);
  int spikes = 0, total = 0;
  for (sim::Epoch e = 0; e < 300; ++e) {
    for (sim::NodeId id = 1; id < kNodes; ++id) {
      spikes += gen.Value(id, e) > 80.0;
      ++total;
    }
  }
  double rate = static_cast<double>(spikes) / total;
  EXPECT_NEAR(rate, 0.05, 0.02);
}

TEST(TraceGeneratorTest, ReplaysAndWraps) {
  std::vector<std::vector<double>> m = {{0, 1, 2}, {0, 3, 4}};
  TraceGenerator gen(m, Modality::kSound);
  EXPECT_EQ(gen.trace_length(), 2u);
  EXPECT_DOUBLE_EQ(gen.Value(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(gen.Value(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(gen.Value(1, 2), 1.0);  // wrap
  EXPECT_DOUBLE_EQ(gen.Value(2, 5), 4.0);
}

TEST(WindowAggregateGeneratorTest, AveragesSlidingWindow) {
  std::vector<std::vector<double>> m = {{0, 10}, {0, 20}, {0, 30}, {0, 40}};
  TraceGenerator inner(m, Modality::kSound);
  WindowAggregateGenerator gen(&inner, 2, /*window=*/2, agg::AggKind::kAvg);
  EXPECT_DOUBLE_EQ(gen.Value(1, 0), 10.0);          // only one sample yet
  EXPECT_DOUBLE_EQ(gen.Value(1, 1), 15.0);          // (10+20)/2
  EXPECT_DOUBLE_EQ(gen.Value(1, 2), 25.0);          // (20+30)/2
  EXPECT_DOUBLE_EQ(gen.Value(1, 3), 35.0);          // (30+40)/2
}

TEST(WindowAggregateGeneratorTest, MaxAndMinKinds) {
  std::vector<std::vector<double>> m = {{0, 10}, {0, 40}, {0, 20}};
  TraceGenerator inner_max(m, Modality::kSound);
  WindowAggregateGenerator gmax(&inner_max, 2, 3, agg::AggKind::kMax);
  EXPECT_DOUBLE_EQ(gmax.Value(1, 2), 40.0);
  TraceGenerator inner_min(m, Modality::kSound);
  WindowAggregateGenerator gmin(&inner_min, 2, 3, agg::AggKind::kMin);
  EXPECT_DOUBLE_EQ(gmin.Value(1, 2), 10.0);
}

}  // namespace
}  // namespace kspot::data
