#include <gtest/gtest.h>

#include "core/select.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"
#include "test_util.hpp"

namespace kspot::core {
namespace {

using kspot::testing::TestBed;

TEST(PredicateTest, AllOperators) {
  query::Predicate p;
  p.literal = 50.0;
  p.op = query::CompareOp::kLt;
  EXPECT_TRUE(EvalPredicate(p, 49));
  EXPECT_FALSE(EvalPredicate(p, 50));
  p.op = query::CompareOp::kLe;
  EXPECT_TRUE(EvalPredicate(p, 50));
  EXPECT_FALSE(EvalPredicate(p, 51));
  p.op = query::CompareOp::kGt;
  EXPECT_TRUE(EvalPredicate(p, 51));
  EXPECT_FALSE(EvalPredicate(p, 50));
  p.op = query::CompareOp::kGe;
  EXPECT_TRUE(EvalPredicate(p, 50));
  EXPECT_FALSE(EvalPredicate(p, 49));
  p.op = query::CompareOp::kEq;
  EXPECT_TRUE(EvalPredicate(p, 50));
  EXPECT_FALSE(EvalPredicate(p, 50.5));
  p.op = query::CompareOp::kNe;
  EXPECT_TRUE(EvalPredicate(p, 50.5));
  EXPECT_FALSE(EvalPredicate(p, 50));
}

TEST(BasicSelectTest, CollectsAllTuplesWithoutPredicate) {
  auto bed = TestBed::Grid(16, 4, 701);
  data::UniformGenerator gen(16, data::Modality::kSound, util::Rng(3));
  BasicSelect select(bed.net.get(), &gen, /*has_predicate=*/false, query::Predicate{});
  auto rows = select.RunEpoch(0);
  ASSERT_EQ(rows.size(), 15u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].node, static_cast<sim::NodeId>(i + 1));
    EXPECT_EQ(rows[i].room, bed.topology.room(rows[i].node));
  }
}

TEST(BasicSelectTest, PredicateFiltersAtSource) {
  auto bed = TestBed::Grid(16, 4, 703);
  data::UniformGenerator gen(16, data::Modality::kSound, util::Rng(5));
  data::UniformGenerator check(16, data::Modality::kSound, util::Rng(5));
  query::Predicate p;
  p.attribute = "sound";
  p.op = query::CompareOp::kGt;
  p.literal = 60.0;
  BasicSelect select(bed.net.get(), &gen, /*has_predicate=*/true, p);
  for (sim::Epoch e = 0; e < 5; ++e) {
    auto rows = select.RunEpoch(e);
    size_t expected = 0;
    for (sim::NodeId id = 1; id < 16; ++id) expected += check.Value(id, e) > 60.0;
    EXPECT_EQ(rows.size(), expected) << "epoch " << e;
    for (const auto& row : rows) EXPECT_GT(row.value, 60.0);
  }
}

TEST(BasicSelectTest, SelectiveQueriesAreCheaper) {
  auto all_bed = TestBed::Grid(36, 4, 707);
  auto few_bed = TestBed::Grid(36, 4, 707);
  data::UniformGenerator gen_all(36, data::Modality::kSound, util::Rng(7));
  data::UniformGenerator gen_few(36, data::Modality::kSound, util::Rng(7));
  query::Predicate p;
  p.op = query::CompareOp::kGt;
  p.literal = 95.0;  // ~5% selectivity
  BasicSelect all(all_bed.net.get(), &gen_all, false, query::Predicate{});
  BasicSelect few(few_bed.net.get(), &gen_few, true, p);
  for (sim::Epoch e = 0; e < 10; ++e) {
    all.RunEpoch(e);
    few.RunEpoch(e);
  }
  EXPECT_LT(few_bed.net->total().payload_bytes, all_bed.net->total().payload_bytes / 2);
  EXPECT_LT(few_bed.net->total().messages, all_bed.net->total().messages);
}

TEST(BasicSelectTest, ServerRoutesUngroupedSelect) {
  system::KSpotServer::Options opt;
  opt.epochs = 4;
  opt.seed = 9;
  system::KSpotServer server(system::Scenario::ConferenceFloor(4, 3, 9), opt);
  auto outcome = server.Execute("SELECT nodeid, sound FROM sensors WHERE sound > 0");
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_EQ(outcome.value().algorithm, "SELECT");
  ASSERT_EQ(outcome.value().rows_per_epoch.size(), 4u);
  EXPECT_EQ(outcome.value().rows_per_epoch[0].size(), 12u);  // sound > 0 always true
  EXPECT_TRUE(outcome.value().per_epoch.empty());
}

TEST(BasicSelectTest, ServerRoutesGroupedSelectToTag) {
  system::KSpotServer::Options opt;
  opt.epochs = 3;
  opt.seed = 9;
  system::KSpotServer server(system::Scenario::ConferenceFloor(4, 3, 9), opt);
  auto outcome = server.Execute("SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().algorithm, "TAG");
  // Without a TOP clause, every room is reported.
  EXPECT_EQ(outcome.value().per_epoch.at(0).items.size(), 4u);
}

TEST(BasicSelectTest, SilentWhenNothingMatches) {
  auto bed = TestBed::Grid(16, 4, 709);
  data::UniformGenerator gen(16, data::Modality::kSound, util::Rng(11));
  query::Predicate p;
  p.op = query::CompareOp::kGt;
  p.literal = 1000.0;  // impossible for the sound domain
  BasicSelect select(bed.net.get(), &gen, true, p);
  auto rows = select.RunEpoch(0);
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(bed.net->total().messages, 0u);  // acquisitional: nobody speaks
}

}  // namespace
}  // namespace kspot::core
