#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/energy_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/radio_model.hpp"
#include "sim/routing_tree.hpp"
#include "sim/topology.hpp"
#include "sim/waves.hpp"
#include "test_util.hpp"

namespace kspot::sim {
namespace {

// -------------------------------------------------------------- EventQueue

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.RunUntilIdle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, TiesExecuteInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(7, [&order, i] { order.push_back(i); });
  }
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1, [&] {
    ++fired;
    q.ScheduleAfter(5, [&] { ++fired; });
  });
  q.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 6u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(5, [&] { ++fired; });
  q.ScheduleAt(15, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(10), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  q.AdvanceTo(100);
  bool ran = false;
  q.ScheduleAt(5, [&] { ran = true; });
  q.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 100u);
}

// ---------------------------------------------------------------- Topology

TEST(TopologyTest, GridIsConnectedAndRoomed) {
  TopologyOptions opt;
  opt.num_nodes = 100;
  opt.num_rooms = 16;
  Topology t = MakeGrid(opt);
  EXPECT_EQ(t.num_nodes(), 100u);
  EXPECT_TRUE(t.IsConnected());
  EXPECT_EQ(t.DistinctRooms().size(), 16u);
}

TEST(TopologyTest, UniformRandomConnected) {
  TopologyOptions opt;
  opt.num_nodes = 60;
  opt.num_rooms = 9;
  util::Rng rng(7);
  Topology t = MakeUniformRandom(opt, rng);
  EXPECT_EQ(t.num_nodes(), 60u);
  EXPECT_TRUE(t.IsConnected());
}

TEST(TopologyTest, ClusteredRoomsBalancedAndConnected) {
  TopologyOptions opt;
  opt.num_nodes = 61;  // sink + 60 sensors over 6 rooms
  opt.num_rooms = 6;
  util::Rng rng(11);
  Topology t = MakeClusteredRooms(opt, rng);
  EXPECT_TRUE(t.IsConnected());
  for (GroupId r : t.DistinctRooms()) {
    EXPECT_EQ(t.NodesInRoom(r).size(), 10u);
  }
}

TEST(TopologyTest, AdjacencyIsSymmetric) {
  TopologyOptions opt;
  opt.num_nodes = 30;
  util::Rng rng(13);
  Topology t = MakeUniformRandom(opt, rng);
  auto adj = t.BuildAdjacency();
  for (size_t u = 0; u < adj.size(); ++u) {
    for (NodeId v : adj[u]) {
      EXPECT_NE(std::find(adj[v].begin(), adj[v].end(), static_cast<NodeId>(u)), adj[v].end());
    }
  }
}

TEST(TopologyTest, Figure1MatchesPaper) {
  Topology t = MakeFigure1();
  EXPECT_EQ(t.num_nodes(), 10u);
  EXPECT_EQ(t.DistinctRooms().size(), 4u);
  // Room D holds s7, s8, s9.
  EXPECT_EQ(t.NodesInRoom(3), (std::vector<NodeId>{7, 8, 9}));
  // Readings from the figure.
  auto readings = Figure1Readings();
  EXPECT_DOUBLE_EQ(readings[7], 78.0);
  EXPECT_DOUBLE_EQ(readings[9], 39.0);
  EXPECT_EQ(Figure1RoomName(2), "C");
}

// ------------------------------------------------------------- RoutingTree

TEST(RoutingTreeTest, MinHopDepthsAreShortestPaths) {
  TopologyOptions opt;
  opt.num_nodes = 49;
  Topology t = MakeGrid(opt);
  RoutingTree tree = RoutingTree::BuildMinHop(t);
  EXPECT_EQ(tree.depth(kSinkId), 0);
  // Every non-sink node's parent is exactly one hop shallower.
  for (NodeId id = 1; id < t.num_nodes(); ++id) {
    EXPECT_EQ(tree.depth(id), tree.depth(tree.parent(id)) + 1);
    EXPECT_LE(Distance(t.position(id), t.position(tree.parent(id))), t.comm_range());
  }
}

TEST(RoutingTreeTest, FirstHeardCoversAllNodes) {
  TopologyOptions opt;
  opt.num_nodes = 80;
  util::Rng topo_rng(3);
  Topology t = MakeUniformRandom(opt, topo_rng);
  util::Rng rng(5);
  RoutingTree tree = RoutingTree::BuildFirstHeard(t, rng);
  for (NodeId id = 1; id < t.num_nodes(); ++id) {
    EXPECT_NE(tree.parent(id), kNoNode) << "node " << id << " not joined";
  }
}

TEST(RoutingTreeTest, PostOrderVisitsChildrenBeforeParents) {
  auto bed = kspot::testing::TestBed::Grid(64, 8, 17);
  const RoutingTree& tree = bed.tree;
  std::vector<int> position(tree.num_nodes(), -1);
  const auto& post = tree.post_order();
  for (size_t i = 0; i < post.size(); ++i) position[post[i]] = static_cast<int>(i);
  for (NodeId id = 1; id < tree.num_nodes(); ++id) {
    EXPECT_LT(position[id], position[tree.parent(id)]);
  }
  EXPECT_EQ(post.back(), kSinkId);
}

TEST(RoutingTreeTest, SubtreeSizesSumCorrectly) {
  auto bed = kspot::testing::TestBed::Grid(36, 4, 19);
  const RoutingTree& tree = bed.tree;
  EXPECT_EQ(tree.SubtreeSize(kSinkId), tree.num_nodes());
  size_t child_sum = 0;
  for (NodeId c : tree.children(kSinkId)) child_sum += tree.SubtreeSize(c);
  EXPECT_EQ(child_sum + 1, tree.num_nodes());
}

TEST(RoutingTreeTest, Figure1TreeShape) {
  RoutingTree tree = RoutingTree::FromParents(MakeFigure1Parents());
  EXPECT_EQ(tree.children(kSinkId), (std::vector<NodeId>{2, 4, 6}));
  EXPECT_EQ(tree.parent(9), 4);
  EXPECT_EQ(tree.parent(1), 4);
  EXPECT_EQ(tree.children(6), (std::vector<NodeId>{5, 7, 8}));
  EXPECT_EQ(tree.max_depth(), 2);
}

// -------------------------------------------------------------- RadioModel

TEST(RadioModelTest, FrameMath) {
  RadioModel r;
  EXPECT_EQ(r.FramesForPayload(0), 1u);
  EXPECT_EQ(r.FramesForPayload(29), 1u);
  EXPECT_EQ(r.FramesForPayload(30), 2u);
  EXPECT_EQ(r.FramesForPayload(58), 2u);
  EXPECT_EQ(r.FramesForPayload(59), 3u);
}

TEST(RadioModelTest, OnAirBytesIncludeOverheadPerFrame) {
  RadioModel r;
  size_t one = r.OnAirBytes(10);
  size_t two = r.OnAirBytes(40);
  EXPECT_EQ(one, 10 + r.frame_overhead_bytes + r.preamble_bytes);
  EXPECT_EQ(two, 40 + 2 * (r.frame_overhead_bytes + r.preamble_bytes));
}

TEST(RadioModelTest, AirtimeMatchesBitrate) {
  RadioModel r;
  // 38.4 kbit/s: 48 on-air bytes = 10 ms.
  double t = r.AirtimeSeconds(48 - r.frame_overhead_bytes - r.preamble_bytes);
  EXPECT_NEAR(t, 48.0 * 8.0 / 38400.0, 1e-12);
}

// -------------------------------------------------------------- EnergyModel

TEST(EnergyModelTest, TxCostsMoreThanRx) {
  EnergyModel e;
  EXPECT_GT(e.TxEnergy(0.01), e.RxEnergy(0.01));
  EXPECT_NEAR(e.TxEnergy(1.0), 3.0 * 0.027, 1e-12);
}

TEST(EnergyMeterTest, BatteryDepletionKillsNode) {
  EnergyMeter m(1.0);
  EXPECT_TRUE(m.alive());
  m.AddTx(0.6);
  EXPECT_TRUE(m.alive());
  EXPECT_NEAR(m.remaining_fraction(), 0.4, 1e-12);
  m.AddRx(0.5);
  EXPECT_FALSE(m.alive());
  EXPECT_EQ(m.remaining_fraction(), 0.0);
}

TEST(EnergyMeterTest, UnlimitedBatteryNeverDies) {
  EnergyMeter m(0.0);
  m.AddTx(1e9);
  EXPECT_TRUE(m.alive());
  EXPECT_EQ(m.remaining_fraction(), 1.0);
}

// ------------------------------------------------------------------ Network

TEST(NetworkTest, UnicastChargesBothEndsAndCounts) {
  auto bed = kspot::testing::TestBed::Grid(9, 4, 23);
  NodeId leaf = 0;
  for (NodeId id = 1; id < bed.tree.num_nodes(); ++id) {
    if (bed.tree.children(id).empty()) leaf = id;
  }
  ASSERT_NE(leaf, 0);
  EXPECT_TRUE(bed.net->UnicastToParent(leaf, 20));
  EXPECT_EQ(bed.net->total().messages, 1u);
  EXPECT_EQ(bed.net->total().payload_bytes, 20u);
  EXPECT_GT(bed.net->meter(leaf).tx_joules(), 0.0);
  EXPECT_GT(bed.net->meter(bed.tree.parent(leaf)).rx_joules(), 0.0);
}

TEST(NetworkTest, PhaseAttribution) {
  auto bed = kspot::testing::TestBed::Grid(9, 4, 29);
  bed.net->SetPhase("alpha");
  bed.net->UnicastToParent(5, 10);
  bed.net->SetPhase("beta");
  bed.net->UnicastToParent(5, 30);
  EXPECT_EQ(bed.net->PhaseTotal("alpha").payload_bytes, 10u);
  EXPECT_EQ(bed.net->PhaseTotal("beta").payload_bytes, 30u);
  EXPECT_EQ(bed.net->total().payload_bytes, 40u);
}

TEST(NetworkTest, TotalLossDropsEverything) {
  NetworkOptions opt;
  opt.loss_prob = 1.0;
  auto bed = kspot::testing::TestBed::Grid(9, 4, 31, opt);
  EXPECT_FALSE(bed.net->UnicastToParent(5, 10));
  // Transmission cost is still charged.
  EXPECT_EQ(bed.net->total().messages, 1u);
  EXPECT_EQ(bed.net->total().rx_energy_j, 0.0);
}

TEST(NetworkTest, RetriesImproveDelivery) {
  NetworkOptions lossy;
  lossy.loss_prob = 0.5;
  NetworkOptions retried = lossy;
  retried.max_retries = 5;
  int no_retry_ok = 0, retry_ok = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    auto a = kspot::testing::TestBed::Grid(9, 4, seed, lossy);
    auto b = kspot::testing::TestBed::Grid(9, 4, seed, retried);
    no_retry_ok += a.net->UnicastToParent(5, 10);
    retry_ok += b.net->UnicastToParent(5, 10);
  }
  EXPECT_GT(retry_ok, no_retry_ok);
  EXPECT_GE(retry_ok, 38);  // 1 - 0.5^6 per attempt
}

TEST(NetworkTest, BroadcastReachesAllChildrenWhenLossless) {
  auto bed = kspot::testing::TestBed::Grid(16, 4, 37);
  auto delivered = bed.net->BroadcastToChildren(kSinkId, 12);
  EXPECT_EQ(delivered.size(), bed.tree.children(kSinkId).size());
  EXPECT_EQ(bed.net->total().messages, 1u);  // one tx regardless of fan-out
}

TEST(NetworkTest, PathPrimitivesTraverseHops) {
  auto bed = kspot::testing::TestBed::Grid(25, 4, 41);
  NodeId deep = 0;
  for (NodeId id = 1; id < bed.tree.num_nodes(); ++id) {
    if (bed.tree.depth(id) > bed.tree.depth(deep)) deep = id;
  }
  ASSERT_GT(bed.tree.depth(deep), 1);
  auto before = bed.net->total();
  EXPECT_TRUE(bed.net->UnicastUpPath(deep, 8));
  auto up = bed.net->total().Since(before);
  EXPECT_EQ(up.messages, static_cast<uint64_t>(bed.tree.depth(deep)));
  before = bed.net->total();
  EXPECT_TRUE(bed.net->UnicastDownPath(deep, 8));
  auto down = bed.net->total().Since(before);
  EXPECT_EQ(down.messages, static_cast<uint64_t>(bed.tree.depth(deep)));
}

// -------------------------------------------------------------------- Waves

TEST(WaveTest, UpWaveAggregatesWholeTree) {
  auto bed = kspot::testing::TestBed::Grid(49, 4, 43);
  using Msg = int;  // subtree node count
  auto produce = [&](NodeId, std::vector<Msg>&& inbox) -> std::optional<Msg> {
    int total = 1;
    for (int c : inbox) total += c;
    return total;
  };
  auto bytes = [](const Msg&) -> size_t { return 4; };
  auto sink = UpWave<Msg>::Run(*bed.net, produce, bytes);
  ASSERT_TRUE(sink.has_value());
  EXPECT_EQ(*sink, 49);
  // Every non-sink node transmitted exactly once.
  EXPECT_EQ(bed.net->total().messages, 48u);
}

TEST(WaveTest, UpWaveSuppressionCostsNothing) {
  auto bed = kspot::testing::TestBed::Grid(49, 4, 47);
  using Msg = int;
  auto produce = [&](NodeId node, std::vector<Msg>&&) -> std::optional<Msg> {
    if (node != kSinkId) return std::nullopt;  // everyone suppresses
    return 0;
  };
  auto bytes = [](const Msg&) -> size_t { return 4; };
  UpWave<Msg>::Run(*bed.net, produce, bytes);
  EXPECT_EQ(bed.net->total().messages, 0u);
}

TEST(WaveTest, DownWaveReachesEveryNode) {
  auto bed = kspot::testing::TestBed::Grid(49, 4, 53);
  using Msg = int;
  size_t received = 0;
  auto produce = [&](NodeId node, const Msg* incoming) -> std::optional<Msg> {
    if (node != kSinkId) {
      EXPECT_NE(incoming, nullptr);
      ++received;
    }
    return 1;
  };
  auto bytes = [](const Msg&) -> size_t { return 2; };
  size_t reached = DownWave<Msg>::Run(*bed.net, produce, bytes);
  EXPECT_EQ(reached, 49u);
  EXPECT_EQ(received, 48u);
  // Only nodes with children transmit.
  size_t inner = 0;
  for (NodeId id = 0; id < bed.tree.num_nodes(); ++id) {
    if (!bed.tree.children(id).empty()) ++inner;
  }
  EXPECT_EQ(bed.net->total().messages, inner);
}

TEST(WaveTest, DeadNodesSilenceSubtree) {
  NetworkOptions opt;
  opt.battery_j = 0.5;  // generous for radio traffic; drained manually below
  auto bed = kspot::testing::TestBed::Grid(9, 4, 59, opt);
  // Drain one of the sink's children.
  NodeId victim = bed.tree.children(kSinkId)[0];
  bed.net->meter(victim).AddTx(1.0);
  ASSERT_FALSE(bed.net->NodeAlive(victim));
  using Msg = int;
  auto produce = [&](NodeId, std::vector<Msg>&& inbox) -> std::optional<Msg> {
    int total = 1;
    for (int c : inbox) total += c;
    return total;
  };
  auto bytes = [](const Msg&) -> size_t { return 4; };
  auto sink = UpWave<Msg>::Run(*bed.net, produce, bytes);
  ASSERT_TRUE(sink.has_value());
  EXPECT_EQ(static_cast<size_t>(*sink), 9 - bed.tree.SubtreeSize(victim));
}

}  // namespace
}  // namespace kspot::sim
