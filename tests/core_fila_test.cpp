#include <gtest/gtest.h>

#include <set>

#include "core/fila.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "test_util.hpp"

namespace kspot::core {
namespace {

using kspot::testing::TestBed;

QuerySpec NodeSpec(int k) {
  QuerySpec spec;
  spec.k = k;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = Grouping::kNode;
  spec.domain_min = 0.0;
  spec.domain_max = 100.0;
  return spec;
}

std::set<sim::GroupId> GroupSet(const TopKResult& r) {
  std::set<sim::GroupId> s;
  for (const auto& item : r.items) s.insert(item.group);
  return s;
}

TEST(FilaTest, ExactSetOnConstantData) {
  auto bed = TestBed::Grid(25, 4, 307);
  std::vector<double> values(25, 0.0);
  for (size_t i = 1; i < 25; ++i) values[i] = static_cast<double>(i * 3 % 50) + 10.0;
  data::ConstantGenerator gen(values);
  data::ConstantGenerator ogen(values);
  QuerySpec spec = NodeSpec(4);
  Fila fila(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  for (sim::Epoch e = 0; e < 10; ++e) {
    TopKResult got = fila.RunEpoch(e);
    EXPECT_EQ(GroupSet(got), GroupSet(oracle.TopK(e))) << "epoch " << e;
  }
  // Constant data: after initialization nobody violates a filter.
  EXPECT_EQ(fila.reports(), 0);
}

TEST(FilaTest, TracksSetUnderSlowDrift) {
  auto bed = TestBed::Grid(25, 4, 311);
  data::RandomWalkGenerator gen(25, data::Modality::kSound, 0.8, util::Rng(53));
  data::RandomWalkGenerator ogen(25, data::Modality::kSound, 0.8, util::Rng(53));
  QuerySpec spec = NodeSpec(3);
  Fila fila(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  size_t exact = 0;
  const sim::Epoch epochs = 40;
  for (sim::Epoch e = 0; e < epochs; ++e) {
    TopKResult got = fila.RunEpoch(e);
    exact += GroupSet(got) == GroupSet(oracle.TopK(e));
  }
  // Filter semantics are exact under lossless links; allow a few boundary
  // ties where the oracle's id-tiebreak differs.
  EXPECT_GE(exact, epochs - 2);
}

TEST(FilaTest, QuietOnStableDataChattyOnVolatile) {
  auto run_cost = [&](double sigma) {
    auto bed = TestBed::Grid(25, 4, 313);
    data::RandomWalkGenerator gen(25, data::Modality::kSound, sigma, util::Rng(59));
    Fila fila(bed.net.get(), &gen, NodeSpec(3));
    for (sim::Epoch e = 0; e < 30; ++e) fila.RunEpoch(e);
    return bed.net->total().messages;
  };
  uint64_t calm = run_cost(0.05);
  uint64_t wild = run_cost(8.0);
  EXPECT_LT(calm, wild);
}

TEST(FilaTest, BeatsTagWhenDataIsStable) {
  auto fila_bed = TestBed::Grid(36, 4, 317);
  auto tag_bed = TestBed::Grid(36, 4, 317);
  data::RandomWalkGenerator gen_f(36, data::Modality::kSound, 0.1, util::Rng(61));
  data::RandomWalkGenerator gen_t(36, data::Modality::kSound, 0.1, util::Rng(61));
  QuerySpec spec = NodeSpec(3);
  Fila fila(fila_bed.net.get(), &gen_f, spec);
  TagTopK tag(tag_bed.net.get(), &gen_t, spec);
  for (sim::Epoch e = 0; e < 30; ++e) {
    fila.RunEpoch(e);
    tag.RunEpoch(e);
  }
  EXPECT_LT(fila_bed.net->total().messages, tag_bed.net->total().messages);
}

TEST(FilaTest, FilterUpdateCounterAdvances) {
  auto bed = TestBed::Grid(16, 4, 331);
  data::RandomWalkGenerator gen(16, data::Modality::kSound, 5.0, util::Rng(67));
  Fila fila(bed.net.get(), &gen, NodeSpec(2));
  for (sim::Epoch e = 0; e < 10; ++e) fila.RunEpoch(e);
  EXPECT_GE(fila.filter_updates(), 1);
  EXPECT_GT(fila.reports(), 0);
}

}  // namespace
}  // namespace kspot::core
