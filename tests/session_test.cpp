#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "kspot/coordinator.hpp"
#include "kspot/scenario_config.hpp"

namespace kspot::system {
namespace {

constexpr const char* kSnapshotSql =
    "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid";
constexpr const char* kSelectSql = "SELECT nodeid, sound FROM sensors WHERE sound > 40";
constexpr const char* kGroupedSelectSql =
    "SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid";
constexpr const char* kVerticalSql =
    "SELECT TOP 3 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 24";

QueryCoordinator::Options HarshRun(size_t epochs = 12, uint64_t seed = 77) {
  QueryCoordinator::Options opt;
  opt.epochs = epochs;
  opt.seed = seed;
  opt.loss_prob = 0.05;
  opt.max_retries = 1;
  opt.battery_j = 0.5;
  opt.enable_churn = true;
  opt.churn.crash_prob = 0.01;
  opt.churn.mean_downtime = 6;
  return opt;
}

std::string EpochDigest(const std::vector<core::TopKResult>& per_epoch) {
  char buf[64];
  std::string out;
  for (const auto& epoch : per_epoch) {
    for (const auto& item : epoch.items) {
      std::snprintf(buf, sizeof buf, "%d:%.17g;", item.group, item.value);
      out += buf;
    }
    out += '|';
  }
  return out;
}

std::string ReportDigest(const CoordinatorReport& report) {
  char buf[96];
  std::string out;
  for (const auto& outcome : report.outcomes) {
    out += outcome.algorithm + "/" + EpochDigest(outcome.per_epoch);
    for (const auto& rows : outcome.rows_per_epoch) {
      for (const auto& t : rows) {
        std::snprintf(buf, sizeof buf, "%u=%.17g;", t.node, t.value);
        out += buf;
      }
      out += '|';
    }
    for (const auto& item : outcome.historic.items) {
      std::snprintf(buf, sizeof buf, "H%d:%.17g;", item.group, item.value);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, "[m=%llu,b=%llu]",
                  static_cast<unsigned long long>(outcome.shared_cost.messages),
                  static_cast<unsigned long long>(outcome.shared_cost.payload_bytes));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "total=%llu/%llu",
                static_cast<unsigned long long>(report.total.messages),
                static_cast<unsigned long long>(report.total.payload_bytes));
  out += buf;
  return out;
}

TEST(SessionTest, OpenStepCloseMatchesBatchRunBitExactly) {
  // Batch Run() is specified as Open + epochs x StepEpoch + Close; the two
  // drivings must agree bit-exactly under loss, retries, battery and churn.
  auto build = [] {
    QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5), HarshRun());
    EXPECT_TRUE(coordinator.Admit(kSnapshotSql).ok());
    EXPECT_TRUE(coordinator.Admit(kSelectSql).ok());
    EXPECT_TRUE(coordinator.Admit(kVerticalSql).ok());
    return coordinator;
  };
  QueryCoordinator batch = build();
  auto batch_report = batch.Run();
  ASSERT_TRUE(batch_report.ok());

  QueryCoordinator session = build();
  ASSERT_TRUE(session.Open().ok());
  EXPECT_TRUE(session.session_open());
  for (size_t e = 0; e < 12; ++e) {
    auto update = session.StepEpoch();
    ASSERT_TRUE(update.ok());
    EXPECT_EQ(update.value().epoch, e);
  }
  EXPECT_EQ(session.session_epoch(), 12u);
  auto session_report = session.Close();
  ASSERT_TRUE(session_report.ok());
  EXPECT_FALSE(session.session_open());

  EXPECT_EQ(ReportDigest(batch_report.value()), ReportDigest(session_report.value()));
}

TEST(SessionTest, EpochCostsSumToSharedTotal) {
  // Conservation across the incremental surface: the per-epoch bills plus
  // the one-shot historic traffic (paid at Open) account for every message
  // the session's network carried.
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5), HarshRun());
  ASSERT_TRUE(coordinator.Admit(kSnapshotSql).ok());
  ASSERT_TRUE(coordinator.Admit(kVerticalSql).ok());
  ASSERT_TRUE(coordinator.Open().ok());
  uint64_t stepped = 0;
  for (size_t e = 0; e < 12; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    stepped += update.value().epoch_cost.messages;
  }
  auto report = coordinator.Close();
  ASSERT_TRUE(report.ok());
  uint64_t tja_cost = 0;
  for (const QueryOutcome& outcome : report.value().outcomes) {
    if (outcome.algorithm == "TJA") tja_cost = outcome.shared_cost.messages;
  }
  EXPECT_GT(tja_cost, 0u);
  EXPECT_EQ(report.value().total.messages, stepped + tja_cost);
}

TEST(SessionTest, MidRunAdmitJoinsGroupWithoutPerturbingResults) {
  // A joiner piggybacking on an existing group performs ZERO network
  // operations, so the incumbent's realized losses, churn and answers stay
  // bit-identical to a run that never saw the joiner — and the shared bill
  // does not grow.
  QueryCoordinator alone(Scenario::ConferenceFloor(6, 3, 5), HarshRun());
  ASSERT_TRUE(alone.Admit(kSnapshotSql).ok());
  auto alone_report = alone.Run();
  ASSERT_TRUE(alone_report.ok());

  QueryCoordinator shared(Scenario::ConferenceFloor(6, 3, 5), HarshRun());
  ASSERT_TRUE(shared.Admit(kSnapshotSql).ok());
  ASSERT_TRUE(shared.Open().ok());
  for (size_t e = 0; e < 6; ++e) ASSERT_TRUE(shared.StepEpoch().ok());
  auto joiner = shared.Admit(kSnapshotSql);
  ASSERT_TRUE(joiner.ok());
  EXPECT_EQ(shared.active_operators(), 1u);  // piggybacked, no new operator
  for (size_t e = 6; e < 12; ++e) ASSERT_TRUE(shared.StepEpoch().ok());
  auto report = shared.Close();
  ASSERT_TRUE(report.ok());

  ASSERT_EQ(report.value().outcomes.size(), 2u);
  const QueryOutcome& incumbent = report.value().outcomes[0];
  const QueryOutcome& late = report.value().outcomes[1];
  EXPECT_EQ(EpochDigest(incumbent.per_epoch),
            EpochDigest(alone_report.value().outcomes[0].per_epoch));
  EXPECT_EQ(report.value().total.messages, alone_report.value().total.messages);
  // The joiner observes exactly the tail from its join epoch on.
  EXPECT_EQ(late.joined_epoch, 6u);
  ASSERT_EQ(late.per_epoch.size(), 6u);
  std::vector<core::TopKResult> tail(incumbent.per_epoch.begin() + 6,
                                     incumbent.per_epoch.end());
  EXPECT_EQ(EpochDigest(late.per_epoch), EpochDigest(tail));
  EXPECT_EQ(late.share_group_size, 2u);
}

TEST(SessionTest, MidRunAdmitSpinsUpNewOperator) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5),
                               QueryCoordinator::Options{});
  ASSERT_TRUE(coordinator.Admit(kSnapshotSql).ok());
  ASSERT_TRUE(coordinator.Open().ok());
  for (size_t e = 0; e < 4; ++e) ASSERT_TRUE(coordinator.StepEpoch().ok());
  EXPECT_EQ(coordinator.active_operators(), 1u);
  ASSERT_TRUE(coordinator.Admit(kSelectSql).ok());
  EXPECT_EQ(coordinator.active_operators(), 2u);
  auto update = coordinator.StepEpoch();
  ASSERT_TRUE(update.ok());
  ASSERT_EQ(update.value().groups.size(), 2u);
  EXPECT_TRUE(update.value().groups[1].ran);
  ASSERT_NE(update.value().groups[1].rows, nullptr);
  for (size_t e = 5; e < 30; ++e) ASSERT_TRUE(coordinator.StepEpoch().ok());
  auto report = coordinator.Close();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().operators, 2u);
  const QueryOutcome& select = report.value().outcomes[1];
  EXPECT_EQ(select.joined_epoch, 4u);
  EXPECT_EQ(select.rows_per_epoch.size(), 26u);  // epochs 4..29
}

TEST(SessionTest, CancelLastMemberReleasesOperatorMidSession) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5),
                               QueryCoordinator::Options{});
  auto snap = coordinator.Admit(kSnapshotSql);
  auto select = coordinator.Admit(kSelectSql);
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(select.ok());
  ASSERT_TRUE(coordinator.Open().ok());
  for (size_t e = 0; e < 5; ++e) ASSERT_TRUE(coordinator.StepEpoch().ok());
  EXPECT_EQ(coordinator.active_operators(), 2u);

  ASSERT_TRUE(coordinator.Cancel(select.value()).ok());
  EXPECT_EQ(coordinator.active_operators(), 1u);  // released with its last member
  // Cancel edge cases stay clean while a session is open.
  EXPECT_FALSE(coordinator.Cancel(select.value()).ok());  // twice
  EXPECT_FALSE(coordinator.Cancel(777).ok());             // unknown

  // The released operator stops costing the shared network.
  auto update = coordinator.StepEpoch();
  ASSERT_TRUE(update.ok());
  ASSERT_EQ(update.value().groups.size(), 1u);
  EXPECT_EQ(update.value().groups[0].algorithm, "MINT");

  // A fresh admission of the same SQL gets a NEW operator (the old group is
  // gone, not resurrected).
  ASSERT_TRUE(coordinator.Admit(kSelectSql).ok());
  EXPECT_EQ(coordinator.active_operators(), 2u);
  for (size_t e = 6; e < 10; ++e) ASSERT_TRUE(coordinator.StepEpoch().ok());
  auto report = coordinator.Close();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().operators, 3u);  // snapshot + released select + new select

  // The cancelled query keeps the slice it observed: epochs [0, 5).
  ASSERT_EQ(report.value().outcomes.size(), 3u);
  const QueryOutcome& cancelled = report.value().outcomes[1];
  EXPECT_TRUE(cancelled.cancelled_mid_session);
  EXPECT_EQ(cancelled.rows_per_epoch.size(), 5u);
  const QueryOutcome& readmitted = report.value().outcomes[2];
  EXPECT_EQ(readmitted.joined_epoch, 6u);
  EXPECT_EQ(readmitted.rows_per_epoch.size(), 4u);
  EXPECT_EQ(readmitted.share_group_size, 1u);
}

TEST(SessionTest, RateLimitedQueryRunsEveryKthEpoch) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5),
                               QueryCoordinator::Options{});
  AdmitOptions every_third;
  every_third.period = 3;
  ASSERT_TRUE(coordinator.Admit(kSnapshotSql, every_third).ok());
  ASSERT_TRUE(coordinator.Open().ok());
  std::vector<bool> ran;
  for (size_t e = 0; e < 9; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    ASSERT_EQ(update.value().groups.size(), 1u);
    ran.push_back(update.value().groups[0].ran);
    EXPECT_EQ(update.value().groups[0].result != nullptr, update.value().groups[0].ran);
  }
  auto report = coordinator.Close();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(ran, (std::vector<bool>{true, false, false, true, false, false, true, false,
                                    false}));
  EXPECT_EQ(report.value().outcomes[0].per_epoch.size(), 3u);
}

TEST(SessionTest, GroupStepsWheneverAnyMemberIsEligible) {
  // A period only throttles the whole share group when every member skips
  // the epoch: a period-1 member keeps the group (and thus everyone riding
  // it) running every epoch.
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5),
                               QueryCoordinator::Options{});
  AdmitOptions every_third;
  every_third.period = 3;
  ASSERT_TRUE(coordinator.Admit(kSnapshotSql, every_third).ok());
  ASSERT_TRUE(coordinator.Admit(kSnapshotSql).ok());  // period 1, same group
  ASSERT_TRUE(coordinator.Open().ok());
  EXPECT_EQ(coordinator.active_operators(), 1u);
  for (size_t e = 0; e < 6; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    EXPECT_TRUE(update.value().groups[0].ran);
  }
  auto report = coordinator.Close();
  ASSERT_TRUE(report.ok());
  for (const QueryOutcome& outcome : report.value().outcomes) {
    EXPECT_EQ(outcome.per_epoch.size(), 6u);
  }
}

TEST(SessionTest, PriorityOrdersExecutionWithinAnEpoch) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5),
                               QueryCoordinator::Options{});
  ASSERT_TRUE(coordinator.Admit(kSnapshotSql).ok());  // group 0, priority 0
  AdmitOptions urgent;
  urgent.priority = 5;
  ASSERT_TRUE(coordinator.Admit(kGroupedSelectSql, urgent).ok());  // group 1
  ASSERT_TRUE(coordinator.Open().ok());
  auto update = coordinator.StepEpoch();
  ASSERT_TRUE(update.ok());
  ASSERT_EQ(update.value().groups.size(), 2u);
  EXPECT_EQ(update.value().groups[0].group_id, 1u);  // priority 5 first
  EXPECT_EQ(update.value().groups[1].group_id, 0u);
  ASSERT_TRUE(coordinator.Close().ok());
}

TEST(SessionTest, LifecycleErrorsAreClean) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(4, 3, 5),
                               QueryCoordinator::Options{});
  EXPECT_FALSE(coordinator.StepEpoch().ok());  // no session
  EXPECT_FALSE(coordinator.Close().ok());
  ASSERT_TRUE(coordinator.Open().ok());
  EXPECT_FALSE(coordinator.Open().ok());  // already open
  EXPECT_FALSE(coordinator.Run().ok());   // batch refused while a session runs
  ASSERT_TRUE(coordinator.StepEpoch().ok());
  ASSERT_TRUE(coordinator.Close().ok());
  // After Close the coordinator is reusable in either mode.
  ASSERT_TRUE(coordinator.Run().ok());
  ASSERT_TRUE(coordinator.Open().ok());
  ASSERT_TRUE(coordinator.Close().ok());
}

TEST(SessionTest, ShardedSessionMatchesSerialBitExactly) {
  // Same contract the data plane pins everywhere else (shard_test,
  // golden_equivalence_test): lossless beds are bit-identical to serial for
  // any shard count; lossy beds draw per-node substreams, so they are
  // invariant across shard/thread counts (compared among sharded configs).
  auto run_with = [](size_t shards, double loss) {
    QueryCoordinator::Options opt;
    opt.epochs = 10;
    opt.seed = 33;
    opt.loss_prob = loss;
    opt.max_retries = 1;
    opt.enable_churn = true;
    opt.churn.crash_prob = 0.01;
    opt.churn.mean_downtime = 6;
    opt.shards = shards;
    opt.shard_threads = 2;
    QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5), opt);
    EXPECT_TRUE(coordinator.Admit(kSnapshotSql).ok());
    EXPECT_TRUE(coordinator.Admit(kGroupedSelectSql).ok());
    auto report = coordinator.Run();
    EXPECT_TRUE(report.ok());
    return ReportDigest(report.value());
  };
  EXPECT_EQ(run_with(1, 0.0), run_with(3, 0.0));
  EXPECT_EQ(run_with(2, 0.05), run_with(4, 0.05));
}

}  // namespace
}  // namespace kspot::system
